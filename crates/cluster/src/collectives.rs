//! Collective operations over the mesh: broadcast, gather, all-gather, ring
//! all-reduce and ring reduce-scatter — the "different aggregation methods"
//! of §3.1.3 (map-reduce, all-reduce, reduce-scatter).
//!
//! Every rank must call the same collectives in the same program order; tags
//! are auto-allocated from a per-endpoint counter that stays aligned across
//! ranks. All reductions run in deterministic order, so repeated runs produce
//! bit-identical results.
//!
//! The f64 reductions come in two flavors: the legacy methods ship raw
//! little-endian f64s, and `*_codec` variants route every payload through a
//! [`crate::wire::WireCodec`] (sparse / adaptive / low-precision), decoding
//! and merging in the same deterministic rank/segment order. The legacy
//! methods are the [`WireCodec::Dense`] special case, so byte counts of
//! existing callers are unchanged.
//!
//! Every collective returns `Result<_, CommError>`: a cancelled run, a
//! receive timeout, or an exhausted retry budget surfaces as a typed error
//! at the collective boundary instead of a panic deep in the fabric.

use crate::comm::Comm;
use crate::fault::CommError;
use crate::wire::{self, WireCodec};
use bytes::Bytes;

fn f64s_to_bytes(buf: &[f64]) -> Bytes {
    wire::f64s_to_bytes(buf)
}

fn bytes_to_f64s(bytes: &Bytes) -> Vec<f64> {
    wire::bytes_to_f64s(bytes)
}

/// Segment `[start, end)` of a length-`len` buffer owned by `seg` of `world`.
pub fn segment_bounds(len: usize, world: usize, seg: usize) -> (usize, usize) {
    let base = len / world;
    let extra = len % world;
    let start = seg * base + seg.min(extra);
    let size = base + usize::from(seg < extra);
    (start, start + size)
}

impl Comm {
    /// Synchronizes all ranks.
    pub fn barrier(&self) -> Result<(), CommError> {
        self.all_gather(Bytes::new()).map(|_| ())
    }

    /// Broadcasts `payload` (significant at `root`) to every rank; returns
    /// the received payload everywhere.
    pub fn broadcast(&self, root: usize, payload: Bytes) -> Result<Bytes, CommError> {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            for to in 0..self.world() {
                if to != root {
                    self.send(to, tag, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            self.recv(root, tag)
        }
    }

    /// Gathers every rank's payload at `root` (rank order). Non-roots get
    /// `None`.
    pub fn gather(&self, root: usize, payload: Bytes) -> Result<Option<Vec<Bytes>>, CommError> {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.world());
            for from in 0..self.world() {
                if from == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(from, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, payload)?;
            Ok(None)
        }
    }

    /// All ranks exchange payloads; returns all of them in rank order.
    pub fn all_gather(&self, payload: Bytes) -> Result<Vec<Bytes>, CommError> {
        let tag = self.alloc_collective_tag();
        for to in 0..self.world() {
            if to != self.rank() {
                self.send(to, tag, payload.clone())?;
            }
        }
        let mut out = Vec::with_capacity(self.world());
        for from in 0..self.world() {
            if from == self.rank() {
                out.push(payload.clone());
            } else {
                out.push(self.recv(from, tag)?);
            }
        }
        Ok(out)
    }

    /// Reduces (element-wise sum) `buf` to `root` in rank order — the
    /// gather-style aggregation whose single-point bottleneck DimBoost's
    /// parameter server avoids (§4.1). Non-roots keep their input.
    pub fn reduce_to_root_f64(&self, root: usize, buf: &mut [f64]) -> Result<(), CommError> {
        self.reduce_to_root_f64_codec(WireCodec::Dense, root, buf)
    }

    /// [`Self::reduce_to_root_f64`] with payloads encoded under `codec`;
    /// contributions are decode-merged at the root in rank order.
    pub fn reduce_to_root_f64_codec(
        &self,
        codec: WireCodec,
        root: usize,
        buf: &mut [f64],
    ) -> Result<(), CommError> {
        let tag = self.alloc_collective_tag();
        if self.rank() == root {
            for from in 0..self.world() {
                if from == root {
                    continue;
                }
                wire::decode_add(&self.recv(from, tag)?, buf);
            }
        } else {
            self.send_f64s(root, tag, codec, buf)?;
        }
        Ok(())
    }

    /// Broadcasts an f64 buffer from `root`, overwriting `buf` elsewhere.
    pub fn broadcast_f64(&self, root: usize, buf: &mut [f64]) -> Result<(), CommError> {
        let payload =
            if self.rank() == root { f64s_to_bytes(buf) } else { Bytes::new() };
        let received = self.broadcast(root, payload)?;
        if self.rank() != root {
            let vals = bytes_to_f64s(&received);
            assert_eq!(vals.len(), buf.len(), "broadcast buffer length mismatch");
            buf.copy_from_slice(&vals);
        }
        Ok(())
    }

    /// Ring reduce-scatter: on return, rank `r` holds the fully reduced
    /// segment `r` of `buf` (bounds from [`segment_bounds`]); the rest of
    /// `buf` is garbage. Each rank moves `(W−1)/W · len` elements each way —
    /// the bandwidth-optimal aggregation LightGBM uses (§4.1).
    pub fn reduce_scatter_f64(&self, buf: &mut [f64]) -> Result<(usize, usize), CommError> {
        self.reduce_scatter_f64_codec(WireCodec::Dense, buf)
    }

    /// [`Self::reduce_scatter_f64`] with every ring hop encoded under
    /// `codec`. Partial sums are decode-merged in the same segment order as
    /// the dense ring, so lossless codecs stay bit-identical.
    pub fn reduce_scatter_f64_codec(
        &self,
        codec: WireCodec,
        buf: &mut [f64],
    ) -> Result<(usize, usize), CommError> {
        let w = self.world();
        let r = self.rank();
        if w == 1 {
            return Ok((0, buf.len()));
        }
        let tag = self.alloc_collective_tags(w as u64 - 1);
        let next = (r + 1) % w;
        let prev = (r + w - 1) % w;
        // Step s: send segment (r − s) mod w to next, receive and accumulate
        // segment (r − s − 1) mod w from prev. After w−1 steps rank r fully
        // owns segment (r + 1) mod w; a final rotation hop below leaves it
        // with segment r.
        for s in 0..w - 1 {
            let send_seg = (r + w - s) % w;
            let recv_seg = (r + w - s - 1) % w;
            let (slo, shi) = segment_bounds(buf.len(), w, send_seg);
            self.send_f64s(next, tag + s as u64, codec, &buf[slo..shi])?;
            let incoming = self.recv(prev, tag + s as u64)?;
            let (rlo, rhi) = segment_bounds(buf.len(), w, recv_seg);
            wire::decode_add(&incoming, &mut buf[rlo..rhi]);
        }
        // After the loop, rank r fully owns segment (r + 1) mod w. Rotate one
        // more hop so rank r ends with segment r (one extra segment-sized
        // transfer, keeping the API intuitive).
        let owned = (r + 1) % w;
        let (olo, ohi) = segment_bounds(buf.len(), w, owned);
        let tag2 = self.alloc_collective_tag();
        // Rank r owns segment r+1, which is exactly what `next` wants; my
        // segment r sits on `prev`.
        self.send_f64s(next, tag2, codec, &buf[olo..ohi])?;
        let mine = self.recv(prev, tag2)?;
        let (mlo, mhi) = segment_bounds(buf.len(), w, r);
        wire::decode_into(&mine, &mut buf[mlo..mhi]);
        Ok((mlo, mhi))
    }

    /// Ring all-gather of segments: rank `r` contributes segment `r` of
    /// `buf`; on return every rank holds the complete buffer.
    pub fn all_gather_segments_f64(&self, buf: &mut [f64]) -> Result<(), CommError> {
        self.all_gather_segments_f64_codec(WireCodec::Dense, buf)
    }

    /// [`Self::all_gather_segments_f64`] with every forwarded segment encoded
    /// under `codec`.
    pub fn all_gather_segments_f64_codec(
        &self,
        codec: WireCodec,
        buf: &mut [f64],
    ) -> Result<(), CommError> {
        let w = self.world();
        let r = self.rank();
        if w == 1 {
            return Ok(());
        }
        let tag = self.alloc_collective_tags(w as u64 - 1);
        let next = (r + 1) % w;
        let prev = (r + w - 1) % w;
        for s in 0..w - 1 {
            let send_seg = (r + w - s) % w;
            let recv_seg = (r + w - s - 1) % w;
            let (slo, shi) = segment_bounds(buf.len(), w, send_seg);
            self.send_f64s(next, tag + s as u64, codec, &buf[slo..shi])?;
            let incoming = self.recv(prev, tag + s as u64)?;
            let (rlo, rhi) = segment_bounds(buf.len(), w, recv_seg);
            wire::decode_into(&incoming, &mut buf[rlo..rhi]);
        }
        Ok(())
    }

    /// Ring all-reduce: element-wise sum of `buf` across all ranks, complete
    /// everywhere (reduce-scatter + all-gather; ~2·len traffic per rank).
    pub fn all_reduce_f64(&self, buf: &mut [f64]) -> Result<(), CommError> {
        self.all_reduce_f64_codec(WireCodec::Dense, buf)
    }

    /// [`Self::all_reduce_f64`] with every hop encoded under `codec`. With
    /// [`WireCodec::F32`] the reduced segments are forwarded verbatim through
    /// the all-gather (f32→f64→f32 is exact), so all ranks still agree
    /// bit-for-bit with each other — just not with the dense result.
    pub fn all_reduce_f64_codec(&self, codec: WireCodec, buf: &mut [f64]) -> Result<(), CommError> {
        self.reduce_scatter_f64_codec(codec, buf)?;
        self.all_gather_segments_f64_codec(codec, buf)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cost::NetworkCostModel;

    /// Runs `f(rank)` on a `world`-sized mesh, returning per-rank outputs.
    fn run<T: Send>(world: usize, f: impl Fn(&Comm) -> T + Sync) -> Vec<T> {
        let mesh = Comm::mesh(world, NetworkCostModel::infinite());
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            for (comm, slot) in mesh.into_iter().zip(out.iter_mut()) {
                let f = &f;
                s.spawn(move || {
                    *slot = Some(f(&comm));
                });
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn segment_bounds_cover_buffer() {
        let len = 10;
        let w = 3;
        let segs: Vec<_> = (0..w).map(|s| segment_bounds(len, w, s)).collect();
        assert_eq!(segs, vec![(0, 4), (4, 7), (7, 10)]);
        // Degenerate: more workers than elements.
        let segs: Vec<_> = (0..4).map(|s| segment_bounds(2, 4, s)).collect();
        assert_eq!(segs, vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
    }

    #[test]
    fn broadcast_delivers_everywhere() {
        let got = run(4, |c| {
            let payload = if c.rank() == 1 { Bytes::from_static(b"root") } else { Bytes::new() };
            c.broadcast(1, payload).unwrap()
        });
        for g in got {
            assert_eq!(&g[..], b"root");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = run(3, |c| {
            let payload = Bytes::from(vec![c.rank() as u8]);
            c.gather(0, payload).unwrap()
        });
        assert_eq!(
            got[0].as_ref().unwrap().iter().map(|b| b[0]).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(got[1].is_none());
        assert!(got[2].is_none());
    }

    #[test]
    fn all_gather_everywhere() {
        let got = run(3, |c| {
            c.all_gather(Bytes::from(vec![c.rank() as u8 * 10])).unwrap()
        });
        for g in got {
            assert_eq!(g.iter().map(|b| b[0]).collect::<Vec<_>>(), vec![0, 10, 20]);
        }
    }

    #[test]
    fn reduce_to_root_sums() {
        let got = run(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.reduce_to_root_f64(2, &mut buf).unwrap();
            buf
        });
        assert_eq!(got[2], vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        assert_eq!(got[0], vec![0.0, 1.0]); // non-root unchanged
    }

    #[test]
    fn broadcast_f64_overwrites() {
        let got = run(3, |c| {
            let mut buf = if c.rank() == 0 { vec![1.5, 2.5] } else { vec![0.0, 0.0] };
            c.broadcast_f64(0, &mut buf).unwrap();
            buf
        });
        for g in got {
            assert_eq!(g, vec![1.5, 2.5]);
        }
    }

    #[test]
    fn ring_all_reduce_matches_sum() {
        for world in [1, 2, 3, 4, 5] {
            let len = 11;
            let got = run(world, move |c| {
                let mut buf: Vec<f64> =
                    (0..len).map(|i| (c.rank() * 100 + i) as f64).collect();
                c.all_reduce_f64(&mut buf).unwrap();
                buf
            });
            let expected: Vec<f64> = (0..len)
                .map(|i| (0..world).map(|r| (r * 100 + i) as f64).sum())
                .collect();
            for (r, g) in got.iter().enumerate() {
                assert_eq!(g, &expected, "world={world} rank={r}");
            }
        }
    }

    #[test]
    fn reduce_scatter_owns_reduced_segment() {
        for world in [2, 3, 4] {
            let len = 10;
            let got = run(world, move |c| {
                let mut buf: Vec<f64> = (0..len).map(|i| (c.rank() + i) as f64).collect();
                let (lo, hi) = c.reduce_scatter_f64(&mut buf).unwrap();
                (lo, hi, buf[lo..hi].to_vec())
            });
            for (r, (lo, hi, seg)) in got.iter().enumerate() {
                let (elo, ehi) = segment_bounds(len, world, r);
                assert_eq!((*lo, *hi), (elo, ehi), "world={world} rank={r}");
                let expected: Vec<f64> = (elo..ehi)
                    .map(|i| (0..world).map(|w| (w + i) as f64).sum())
                    .collect();
                assert_eq!(seg, &expected, "world={world} rank={r}");
            }
        }
    }

    #[test]
    fn collective_byte_accounting_is_exact() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let counters = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let payload = Bytes::from(vec![0u8; 100]);
                        c.all_gather(payload).unwrap();
                        c.counters()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        // Each of 2 workers sends 100 bytes to 1 peer and receives 100.
        for c in counters {
            assert_eq!(c.bytes_sent, 100);
            assert_eq!(c.bytes_received, 100);
            assert_eq!(c.logical_f64_bytes, 0); // raw sends are not codec-mediated
            assert_eq!(c.wire_f64_bytes, 0);
        }

        // Codec-mediated reductions record logical vs wire bytes exactly.
        // World = 2, all-zero 8-element buffer: every ring hop moves one
        // 4-element segment (32 logical bytes); all-reduce is 3 hops per
        // rank (1 reduce-scatter step + rotation + 1 all-gather step).
        // Zero-nnz sparse payloads are the 5-byte header alone.
        for (codec, hop_wire) in [
            (WireCodec::Dense, 32u64),
            (WireCodec::Sparse, 5),
            (WireCodec::Auto, 5),
            (WireCodec::F32, 5),
        ] {
            let counters = run(2, move |c| {
                let mut buf = vec![0.0f64; 8];
                c.all_reduce_f64_codec(codec, &mut buf).unwrap();
                c.counters()
            });
            for c in counters {
                assert_eq!(c.logical_f64_bytes, 3 * 32, "{codec}");
                assert_eq!(c.wire_f64_bytes, 3 * hop_wire, "{codec}");
                assert_eq!(c.bytes_sent, 3 * hop_wire, "{codec}");
            }
        }

        // Adaptive switch point: n = 16 ⇒ dense = 128 bytes, sparse =
        // 5 + 12·nnz. nnz = 10 (125 < 128) still ships sparse; nnz = 11
        // (137) flips to dense.
        for (nnz, expected_wire) in [(10usize, 125u64), (11, 128)] {
            let counters = run(2, move |c| {
                let mut buf = vec![0.0f64; 16];
                for (i, slot) in buf.iter_mut().take(nnz).enumerate() {
                    *slot = 1.0 + i as f64;
                }
                c.reduce_to_root_f64_codec(WireCodec::Auto, 0, &mut buf).unwrap();
                c.counters()
            });
            assert_eq!(counters[1].logical_f64_bytes, 128, "nnz={nnz}");
            assert_eq!(counters[1].wire_f64_bytes, expected_wire, "nnz={nnz}");
            assert_eq!(counters[1].bytes_sent, expected_wire, "nnz={nnz}");
            assert_eq!(counters[0].bytes_sent, 0); // root only receives
        }
    }

    #[test]
    fn lossless_codec_reductions_match_dense_bit_for_bit() {
        // Integer-valued contributions sum exactly in any order, so the
        // dense result is the unambiguous reference. ~25% density
        // exercises sparse payloads; Auto mixes layouts across hops.
        let len = 37;
        for world in [1, 2, 3, 5] {
            let mk = move |rank: usize| -> Vec<f64> {
                (0..len)
                    .map(|i| if (i + rank).is_multiple_of(4) { (rank * 100 + i) as f64 } else { 0.0 })
                    .collect()
            };
            let dense = run(world, move |c| {
                let mut buf = mk(c.rank());
                c.all_reduce_f64(&mut buf).unwrap();
                buf
            });
            for codec in [WireCodec::Sparse, WireCodec::Auto] {
                let got = run(world, move |c| {
                    let mut buf = mk(c.rank());
                    c.all_reduce_f64_codec(codec, &mut buf).unwrap();
                    buf
                });
                assert_eq!(got, dense, "all_reduce {codec} world={world}");
                let root = run(world, move |c| {
                    let mut buf = mk(c.rank());
                    c.reduce_to_root_f64_codec(codec, 0, &mut buf).unwrap();
                    buf
                });
                assert_eq!(root[0], dense[0], "reduce_to_root {codec} world={world}");
            }
        }
    }

    #[test]
    fn f32_codec_agrees_across_ranks_and_approximates_the_sum() {
        let len = 19;
        let got = run(3, move |c| {
            let mut buf: Vec<f64> = (0..len)
                .map(|i: usize| {
                    if i.is_multiple_of(3) { (c.rank() + 1) as f64 * 0.1 + i as f64 } else { 0.0 }
                })
                .collect();
            c.all_reduce_f64_codec(WireCodec::F32, &mut buf).unwrap();
            buf
        });
        // Lossy, but still deterministic and rank-consistent: every rank's
        // copy of a segment passed through the same f32 quantization.
        assert_eq!(got[0], got[1]);
        assert_eq!(got[0], got[2]);
        for (i, &v) in got[0].iter().enumerate() {
            let exact: f64 = if i.is_multiple_of(3) {
                (1..=3).map(|r| f64::from(r) * 0.1 + i as f64).sum()
            } else {
                0.0
            };
            let tol = exact.abs().max(1.0) * 1e-5;
            assert!((v - exact).abs() <= tol, "i={i}: {v} vs {exact}");
        }
    }

    /// Collectives keep working when messages are duplicated and delayed by
    /// an (otherwise lossless) fault plan — dedup happens at envelope
    /// intake, so ring hops never consume a stale duplicate.
    #[test]
    fn collectives_survive_duplication_faults() {
        let plan = crate::fault::FaultPlan::new(23).with_dup(0.4).with_delay(0.3, 0.001);
        for world in [2, 3, 5] {
            let clean = run(world, move |c| {
                let mut buf: Vec<f64> = (0..17).map(|i| (c.rank() * 7 + i) as f64).collect();
                c.all_reduce_f64(&mut buf).unwrap();
                buf
            });
            let (mesh, _ctl) = Comm::mesh_with(world, NetworkCostModel::infinite(), Some(plan));
            let mut out: Vec<Option<Vec<f64>>> = (0..world).map(|_| None).collect();
            std::thread::scope(|s| {
                for (c, slot) in mesh.into_iter().zip(out.iter_mut()) {
                    s.spawn(move || {
                        let mut buf: Vec<f64> =
                            (0..17).map(|i| (c.rank() * 7 + i) as f64).collect();
                        c.all_reduce_f64(&mut buf).unwrap();
                        *slot = Some(buf);
                    });
                }
            });
            for (r, got) in out.into_iter().enumerate() {
                assert_eq!(got.unwrap(), clean[r], "world={world} rank={r}");
            }
        }
    }
}
