//! Parameter-server-style sharded aggregation (the DimBoost pattern, §4.1).
//!
//! DimBoost "aggregates the histograms on parameter servers and enables
//! server-side split finding". Here every worker doubles as one server (the
//! common co-located deployment): the flat histogram buffer is sharded into
//! per-server ranges, each worker *pushes* its local slice of every range to
//! the owning server, and each server reduces the slices for its own range.
//! Split finding then happens server-side on the reduced slice, and only the
//! tiny local-best splits are exchanged — avoiding both the all-reduce
//! traffic and the single-point bottleneck of gather-to-root (§4.1).

use crate::comm::Comm;
use bytes::Bytes;

fn f64s_to_bytes(buf: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(buf.len() * 8);
    for v in buf {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

fn bytes_to_f64s(bytes: &Bytes) -> Vec<f64> {
    bytes.chunks_exact(8).map(|ch| f64::from_le_bytes(ch.try_into().unwrap())).collect()
}

impl Comm {
    /// Pushes `buf`'s shards to their owning servers and reduces the shard
    /// this rank serves.
    ///
    /// `ranges[s]` is the `[start, end)` slice of `buf` owned by server `s`
    /// (`ranges.len() == world`); ranges must be disjoint but need not cover
    /// `buf`. Returns the fully reduced values of `ranges[rank]`.
    pub fn ps_push_and_reduce(&self, buf: &[f64], ranges: &[(usize, usize)]) -> Vec<f64> {
        assert_eq!(ranges.len(), self.world(), "one range per server");
        let tag = self.alloc_collective_tag();
        let r = self.rank();
        // Push every foreign shard to its server.
        for (server, &(lo, hi)) in ranges.iter().enumerate() {
            if server != r {
                self.send(server, tag, f64s_to_bytes(&buf[lo..hi]));
            }
        }
        // Serve my shard: start from my local slice, add peers in rank order.
        let (lo, hi) = ranges[r];
        let mut reduced = buf[lo..hi].to_vec();
        for from in 0..self.world() {
            if from == r {
                continue;
            }
            let slice = bytes_to_f64s(&self.recv(from, tag));
            assert_eq!(slice.len(), reduced.len(), "shard length mismatch");
            for (a, b) in reduced.iter_mut().zip(&slice) {
                *a += b;
            }
        }
        reduced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::segment_bounds;
    use crate::cost::NetworkCostModel;

    #[test]
    fn ps_reduce_matches_global_sum() {
        for world in [1, 2, 3, 4] {
            let len = 9;
            let mesh = Comm::mesh(world, NetworkCostModel::infinite());
            let results: Vec<Vec<f64>> = std::thread::scope(|s| {
                let handles: Vec<_> = mesh
                    .into_iter()
                    .map(|c| {
                        s.spawn(move || {
                            let buf: Vec<f64> =
                                (0..len).map(|i| (c.rank() * 10 + i) as f64).collect();
                            let ranges: Vec<_> =
                                (0..world).map(|w| segment_bounds(len, world, w)).collect();
                            c.ps_push_and_reduce(&buf, &ranges)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (rank, reduced) in results.iter().enumerate() {
                let (lo, hi) = segment_bounds(len, world, rank);
                let expected: Vec<f64> = (lo..hi)
                    .map(|i| (0..world).map(|w| (w * 10 + i) as f64).sum())
                    .collect();
                assert_eq!(reduced, &expected, "world={world} rank={rank}");
            }
        }
    }

    #[test]
    fn ps_traffic_is_one_histogram_per_worker() {
        // Each worker sends (W-1)/W of its buffer and receives (W-1) shards
        // of its own range: total per-worker traffic ~ len, not W*len.
        let world = 4;
        let len = 1000;
        let mesh = Comm::mesh(world, NetworkCostModel::infinite());
        let counters = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let buf = vec![1.0f64; len];
                        let ranges: Vec<_> =
                            (0..world).map(|w| segment_bounds(len, world, w)).collect();
                        c.ps_push_and_reduce(&buf, &ranges);
                        c.counters()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for c in &counters {
            assert_eq!(c.bytes_sent, (len as u64 * 8 / world as u64) * (world as u64 - 1));
        }
    }
}
