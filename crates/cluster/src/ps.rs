//! Parameter-server-style sharded aggregation (the DimBoost pattern, §4.1).
//!
//! DimBoost "aggregates the histograms on parameter servers and enables
//! server-side split finding". Here every worker doubles as one server (the
//! common co-located deployment): the flat histogram buffer is sharded into
//! per-server ranges, each worker *pushes* its local slice of every range to
//! the owning server, and each server reduces the slices for its own range.
//! Split finding then happens server-side on the reduced slice, and only the
//! tiny local-best splits are exchanged — avoiding both the all-reduce
//! traffic and the single-point bottleneck of gather-to-root (§4.1).

use crate::comm::Comm;
use crate::fault::CommError;
use crate::wire::{self, WireCodec};

impl Comm {
    /// Pushes `buf`'s shards to their owning servers and reduces the shard
    /// this rank serves.
    ///
    /// `ranges[s]` is the `[start, end)` slice of `buf` owned by server `s`
    /// (`ranges.len() == world`); ranges must be disjoint but need not cover
    /// `buf`. Returns the fully reduced values of `ranges[rank]`.
    pub fn ps_push_and_reduce(
        &self,
        buf: &[f64],
        ranges: &[(usize, usize)],
    ) -> Result<Vec<f64>, CommError> {
        self.ps_push_and_reduce_codec(WireCodec::Dense, buf, ranges)
    }

    /// [`Self::ps_push_and_reduce`] with every pushed shard encoded under
    /// `codec`; the serving rank decode-merges contributions in rank order.
    pub fn ps_push_and_reduce_codec(
        &self,
        codec: WireCodec,
        buf: &[f64],
        ranges: &[(usize, usize)],
    ) -> Result<Vec<f64>, CommError> {
        assert_eq!(ranges.len(), self.world(), "one range per server");
        let tag = self.alloc_collective_tag();
        let r = self.rank();
        // Push every foreign shard to its server.
        for (server, &(lo, hi)) in ranges.iter().enumerate() {
            if server != r {
                self.send_f64s(server, tag, codec, &buf[lo..hi])?;
            }
        }
        // Serve my shard: start from my local slice, add peers in rank order.
        // lint: allow(slice-index) — ranges.len() == world is asserted at entry
        let (lo, hi) = ranges[r];
        let mut reduced = buf[lo..hi].to_vec();
        for from in 0..self.world() {
            if from == r {
                continue;
            }
            wire::decode_add(&self.recv(from, tag)?, &mut reduced);
        }
        Ok(reduced)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::collectives::segment_bounds;
    use crate::cost::NetworkCostModel;

    #[test]
    fn ps_reduce_matches_global_sum() {
        for world in [1, 2, 3, 4] {
            let len = 9;
            let mesh = Comm::mesh(world, NetworkCostModel::infinite());
            let results: Vec<Vec<f64>> = std::thread::scope(|s| {
                let handles: Vec<_> = mesh
                    .into_iter()
                    .map(|c| {
                        s.spawn(move || {
                            let buf: Vec<f64> =
                                (0..len).map(|i| (c.rank() * 10 + i) as f64).collect();
                            let ranges: Vec<_> =
                                (0..world).map(|w| segment_bounds(len, world, w)).collect();
                            c.ps_push_and_reduce(&buf, &ranges).unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (rank, reduced) in results.iter().enumerate() {
                let (lo, hi) = segment_bounds(len, world, rank);
                let expected: Vec<f64> = (lo..hi)
                    .map(|i| (0..world).map(|w| (w * 10 + i) as f64).sum())
                    .collect();
                assert_eq!(reduced, &expected, "world={world} rank={rank}");
            }
        }
    }

    #[test]
    fn ps_codec_matches_dense_and_compresses_sparse_shards() {
        let world = 3;
        let len = 30;
        let mk = move |rank: usize| -> Vec<f64> {
            (0..len).map(|i| if i % 5 == rank { (i + 1) as f64 } else { 0.0 }).collect()
        };
        let mut per_codec = Vec::new();
        for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
            let mesh = Comm::mesh(world, NetworkCostModel::infinite());
            let results: Vec<(Vec<f64>, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = mesh
                    .into_iter()
                    .map(|c| {
                        s.spawn(move || {
                            let buf = mk(c.rank());
                            let ranges: Vec<_> =
                                (0..world).map(|w| segment_bounds(len, world, w)).collect();
                            let reduced =
                                c.ps_push_and_reduce_codec(codec, &buf, &ranges).unwrap();
                            (reduced, c.counters().wire_f64_bytes)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            per_codec.push(results);
        }
        // Lossless codecs reduce to bit-identical shards...
        let shards = |r: &[(Vec<f64>, u64)]| r.iter().map(|x| x.0.clone()).collect::<Vec<_>>();
        assert_eq!(shards(&per_codec[0]), shards(&per_codec[1]));
        assert_eq!(shards(&per_codec[0]), shards(&per_codec[2]));
        // ...while the 20%-dense shards ship far fewer wire bytes.
        let wire = |r: &[(Vec<f64>, u64)]| r.iter().map(|x| x.1).sum::<u64>();
        assert!(wire(&per_codec[1]) * 2 < wire(&per_codec[0]), "sparse should be < half");
        assert_eq!(wire(&per_codec[1]), wire(&per_codec[2])); // auto picks sparse here
    }

    #[test]
    fn ps_traffic_is_one_histogram_per_worker() {
        // Each worker sends (W-1)/W of its buffer and receives (W-1) shards
        // of its own range: total per-worker traffic ~ len, not W*len.
        let world = 4;
        let len = 1000;
        let mesh = Comm::mesh(world, NetworkCostModel::infinite());
        let counters = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let buf = vec![1.0f64; len];
                        let ranges: Vec<_> =
                            (0..world).map(|w| segment_bounds(len, world, w)).collect();
                        c.ps_push_and_reduce(&buf, &ranges).unwrap();
                        c.counters()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for c in &counters {
            assert_eq!(c.bytes_sent, (len as u64 * 8 / world as u64) * (world as u64 - 1));
        }
    }
}
