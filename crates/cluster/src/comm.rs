//! Point-to-point communication endpoint with exact byte accounting.
//!
//! Every payload is a real byte buffer ([`bytes::Bytes`]); the endpoint
//! counts what it sends and receives and charges modelled transfer time
//! (see [`crate::cost`]). Messages carry a `(from, tag)` pair and `recv`
//! matches on both, buffering out-of-order arrivals, so interleaved
//! protocol phases cannot steal each other's messages.
//!
//! Loopback sends (to self) are delivered directly and charged nothing —
//! a worker talking to itself never touches the network.

use crate::cost::NetworkCostModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::{Cell, RefCell};

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender rank.
    pub from: u32,
    /// Protocol tag (collectives auto-allocate from a high namespace).
    pub tag: u64,
    /// Serialized payload.
    pub payload: Bytes,
}

/// Communication counters folded into [`crate::stats::WorkerStats`] after a run.
#[derive(Debug, Default, Clone, Copy)]
pub struct CommCounters {
    /// Exact bytes sent over the (simulated) network.
    pub bytes_sent: u64,
    /// Exact bytes received.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Modelled communication seconds.
    pub comm_seconds: f64,
    /// Logical (decoded, 8 bytes/element) size of every codec-mediated f64
    /// payload sent — what the dense wire would have cost.
    pub logical_f64_bytes: u64,
    /// Encoded size of those same payloads as actually sent. The ratio
    /// `logical / wire` is the codec's compression factor.
    pub wire_f64_bytes: u64,
}

/// A worker's endpoint into the in-process fabric.
pub struct Comm {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    pending: RefCell<Vec<Envelope>>,
    counters: RefCell<CommCounters>,
    next_collective_tag: Cell<u64>,
    cost: NetworkCostModel,
}

impl Comm {
    /// Builds a fully connected mesh of `world` endpoints.
    pub fn mesh(world: usize, cost: NetworkCostModel) -> Vec<Comm> {
        assert!(world >= 1, "need at least one worker");
        let mut senders = Vec::with_capacity(world);
        let mut receivers = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                world,
                senders: senders.clone(),
                receiver,
                pending: RefCell::new(Vec::new()),
                counters: RefCell::new(CommCounters::default()),
                next_collective_tag: Cell::new(COLLECTIVE_TAG_BASE),
                cost,
            })
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the mesh.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The transfer-time model in force.
    pub fn cost_model(&self) -> &NetworkCostModel {
        &self.cost
    }

    /// Sends `payload` to `to` under `tag`.
    pub fn send(&self, to: usize, tag: u64, payload: Bytes) {
        assert!(to < self.world, "rank {to} out of range");
        let len = payload.len();
        let envelope = Envelope { from: self.rank as u32, tag, payload };
        if to == self.rank {
            // Loopback: free, delivered immediately.
            self.pending.borrow_mut().push(envelope);
            return;
        }
        self.senders[to].send(envelope).expect("peer endpoint dropped while cluster running");
        let mut c = self.counters.borrow_mut();
        c.bytes_sent += len as u64;
        c.messages_sent += 1;
        c.comm_seconds += self.cost.message_time(len);
    }

    /// Encodes `vals` under `codec` and sends to `to`, recording the
    /// logical-vs-wire byte pair (loopback stays free and unrecorded).
    pub(crate) fn send_f64s(
        &self,
        to: usize,
        tag: u64,
        codec: crate::wire::WireCodec,
        vals: &[f64],
    ) {
        let payload = crate::wire::encode(codec, vals);
        if to != self.rank {
            let mut c = self.counters.borrow_mut();
            c.logical_f64_bytes += crate::wire::logical_bytes(vals.len());
            c.wire_f64_bytes += payload.len() as u64;
        }
        self.send(to, tag, payload);
    }

    /// Receives the message from `from` with `tag`, blocking until it
    /// arrives. Other messages arriving meanwhile are buffered.
    pub fn recv(&self, from: usize, tag: u64) -> Bytes {
        // Check the out-of-order buffer first.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) =
                pending.iter().position(|e| e.from as usize == from && e.tag == tag)
            {
                let envelope = pending.swap_remove(pos);
                self.account_recv(from, envelope.payload.len());
                return envelope.payload;
            }
        }
        loop {
            let envelope =
                self.receiver.recv().expect("peer endpoints dropped while cluster running");
            if envelope.from as usize == from && envelope.tag == tag {
                self.account_recv(from, envelope.payload.len());
                return envelope.payload;
            }
            self.pending.borrow_mut().push(envelope);
        }
    }

    fn account_recv(&self, from: usize, len: usize) {
        if from == self.rank {
            return; // loopback is free
        }
        let mut c = self.counters.borrow_mut();
        c.bytes_received += len as u64;
        c.comm_seconds += len as f64 / self.cost.bandwidth_bytes_per_s;
    }

    /// Allocates the next collective tag. All workers execute collectives in
    /// the same program order, so the counters stay aligned across ranks.
    pub(crate) fn alloc_collective_tag(&self) -> u64 {
        self.alloc_collective_tags(1)
    }

    /// Allocates a block of `n` consecutive collective tags (multi-step
    /// collectives use one tag per step).
    pub(crate) fn alloc_collective_tags(&self, n: u64) -> u64 {
        let tag = self.next_collective_tag.get();
        self.next_collective_tag.set(tag + n);
        tag
    }

    /// Snapshot of the accumulated counters.
    pub fn counters(&self) -> CommCounters {
        *self.counters.borrow()
    }

    /// Folds the counters into worker stats (called at end of a run).
    pub fn fold_into(&self, stats: &mut crate::stats::WorkerStats) {
        let c = self.counters();
        stats.bytes_sent += c.bytes_sent;
        stats.bytes_received += c.bytes_received;
        stats.messages_sent += c.messages_sent;
        stats.comm_seconds += c.comm_seconds;
        stats.logical_f64_bytes += c.logical_f64_bytes;
        stats.wire_f64_bytes += c.wire_f64_bytes;
    }
}

/// Collective tags live in the top half of the tag space; explicit
/// point-to-point protocols should use tags below this.
pub const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip_with_accounting() {
        let mesh = Comm::mesh(2, NetworkCostModel { latency_s: 0.001, bandwidth_bytes_per_s: 1000.0 });
        let (a, b) = (&mesh[0], &mesh[1]);
        a.send(1, 7, Bytes::from_static(b"hello"));
        let got = b.recv(0, 7);
        assert_eq!(&got[..], b"hello");
        let ca = a.counters();
        assert_eq!(ca.bytes_sent, 5);
        assert_eq!(ca.messages_sent, 1);
        assert!((ca.comm_seconds - 0.006).abs() < 1e-12);
        let cb = b.counters();
        assert_eq!(cb.bytes_received, 5);
        assert!((cb.comm_seconds - 0.005).abs() < 1e-12);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let (a, b) = (&mesh[0], &mesh[1]);
        a.send(1, 1, Bytes::from_static(b"first"));
        a.send(1, 2, Bytes::from_static(b"second"));
        // Receive in reverse tag order.
        assert_eq!(&b.recv(0, 2)[..], b"second");
        assert_eq!(&b.recv(0, 1)[..], b"first");
    }

    #[test]
    fn loopback_is_free() {
        let mesh = Comm::mesh(1, NetworkCostModel::lab_cluster());
        let a = &mesh[0];
        a.send(0, 3, Bytes::from_static(b"self"));
        assert_eq!(&a.recv(0, 3)[..], b"self");
        let c = a.counters();
        assert_eq!(c.bytes_sent, 0);
        assert_eq!(c.bytes_received, 0);
        assert_eq!(c.comm_seconds, 0.0);
    }

    #[test]
    fn cross_thread_transfer() {
        let mut mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(1, 9, Bytes::from(vec![1u8, 2, 3]));
            });
            s.spawn(move || {
                assert_eq!(&b.recv(0, 9)[..], &[1, 2, 3]);
            });
        });
    }

    #[test]
    fn fold_into_accumulates_stats() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        mesh[0].send(1, 1, Bytes::from_static(b"xy"));
        let mut stats = crate::stats::WorkerStats::default();
        mesh[0].fold_into(&mut stats);
        assert_eq!(stats.bytes_sent, 2);
        assert_eq!(stats.messages_sent, 1);
    }
}
