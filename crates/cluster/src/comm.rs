//! Point-to-point communication endpoint with exact byte accounting.
//!
//! Every payload is a real byte buffer ([`bytes::Bytes`]); the endpoint
//! counts what it sends and receives and charges modelled transfer time
//! (see [`crate::cost`]). Messages carry a `(from, tag)` pair and `recv`
//! matches on both, buffering out-of-order arrivals, so interleaved
//! protocol phases cannot steal each other's messages.
//!
//! Loopback sends (to self) are delivered directly and charged nothing —
//! a worker talking to itself never touches the network.
//!
//! # Failure semantics
//!
//! `send`/`recv` return [`CommError`] instead of panicking. Under a
//! [`FaultPlan`] a send may be dropped (retried with a modelled ack-timeout
//! charge, up to the plan's retry budget), duplicated (the receiver detects
//! the repeated `(from, tag, seq)` and discards it after accounting its
//! transfer), or delayed (modelled seconds only). With no plan attached the
//! fast path is byte-for-byte identical to the historical accounting.
//!
//! A shared cancel flag plus a control envelope lets the run supervisor
//! wake any blocked `recv` promptly when a peer fails, and a generous
//! receive deadline bounds the wait even if cancellation is never
//! delivered.

use crate::cost::NetworkCostModel;
use crate::fault::{CommError, FaultPlan};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender rank (or [`CONTROL_FROM`] for supervisor control messages).
    pub from: u32,
    /// Protocol tag (collectives auto-allocate from a high namespace).
    pub tag: u64,
    /// Per-`(sender, destination)` sequence number; lets the receiver
    /// discard duplicated deliveries.
    pub seq: u64,
    /// Serialized payload.
    pub payload: Bytes,
}

/// Pseudo-rank used by supervisor control envelopes (cancellation).
pub const CONTROL_FROM: u32 = u32::MAX;

/// Default bound on how long a `recv` waits before reporting
/// [`CommError::Timeout`]. Generous: real protocol messages arrive in
/// microseconds; this only fires when a peer is truly gone and
/// cancellation was never delivered.
pub const RECV_PATIENCE: Duration = Duration::from_secs(30);

/// Default bound on the out-of-order pending buffer. Every message that
/// arrives while a `recv`/`recv_any` waits for something else is parked
/// here; a slow consumer under a dup-heavy fault plan would otherwise grow
/// it without limit. Overflow surfaces as
/// [`CommError::PendingOverflow`] and is counted in
/// [`CommCounters::pending_overflows`].
pub const PENDING_CAP: usize = 4096;

/// Communication counters folded into [`crate::stats::WorkerStats`] after a run.
#[derive(Debug, Default, Clone, Copy)]
pub struct CommCounters {
    /// Exact bytes sent over the (simulated) network.
    pub bytes_sent: u64,
    /// Exact bytes received.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Modelled communication seconds.
    pub comm_seconds: f64,
    /// Logical (decoded, 8 bytes/element) size of every codec-mediated f64
    /// payload sent — what the dense wire would have cost.
    pub logical_f64_bytes: u64,
    /// Encoded size of those same payloads as actually sent. The ratio
    /// `logical / wire` is the codec's compression factor.
    pub wire_f64_bytes: u64,
    /// Send attempts that were dropped by fault injection and retried.
    pub retries: u64,
    /// Duplicated deliveries detected and discarded by the receiver.
    pub duplicates_dropped: u64,
    /// Times the bounded pending buffer refused a message (backpressure).
    pub pending_overflows: u64,
}

/// A worker's endpoint into the in-process fabric.
pub struct Comm {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    pending: RefCell<Vec<Envelope>>,
    counters: RefCell<CommCounters>,
    next_collective_tag: Cell<u64>,
    cost: NetworkCostModel,
    faults: Option<FaultPlan>,
    /// `(from, tag, seq)` triples already delivered — duplicate detection.
    /// Only populated when a fault plan is attached.
    seen: RefCell<HashSet<(u32, u64, u64)>>,
    /// Next sequence number per destination rank.
    send_seq: RefCell<Vec<u64>>,
    cancel: Arc<AtomicBool>,
    recv_patience: Cell<Duration>,
    pending_cap: Cell<usize>,
}

/// Supervisor-side handle onto a mesh: retains a sender for every rank so a
/// failed run can be cancelled even after worker endpoints are gone.
pub struct MeshControl {
    senders: Vec<Sender<Envelope>>,
    cancel: Arc<AtomicBool>,
}

impl MeshControl {
    /// Cancels the run: sets the shared flag and wakes every endpoint that
    /// is blocked in `recv` with a control envelope.
    pub fn cancel_all(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        for sender in &self.senders {
            // Endpoint may already be gone; waking the rest still matters.
            let _ = sender.send(Envelope {
                from: CONTROL_FROM,
                tag: 0,
                seq: 0,
                payload: Bytes::new(),
            });
        }
    }

    /// Whether the run has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

impl Comm {
    /// Builds a fully connected mesh of `world` endpoints (no faults).
    pub fn mesh(world: usize, cost: NetworkCostModel) -> Vec<Comm> {
        Self::mesh_with(world, cost, None).0
    }

    /// Builds a mesh with an optional fault plan, returning the supervisor
    /// control handle alongside the endpoints.
    pub fn mesh_with(
        world: usize,
        cost: NetworkCostModel,
        faults: Option<FaultPlan>,
    ) -> (Vec<Comm>, MeshControl) {
        assert!(world >= 1, "need at least one worker");
        let mut senders = Vec::with_capacity(world);
        let mut receivers = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let comms = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                world,
                senders: senders.clone(),
                receiver,
                pending: RefCell::new(Vec::new()),
                counters: RefCell::new(CommCounters::default()),
                next_collective_tag: Cell::new(COLLECTIVE_TAG_BASE),
                cost,
                faults,
                seen: RefCell::new(HashSet::new()),
                send_seq: RefCell::new(vec![0; world]),
                cancel: Arc::clone(&cancel),
                recv_patience: Cell::new(RECV_PATIENCE),
                pending_cap: Cell::new(PENDING_CAP),
            })
            .collect();
        (comms, MeshControl { senders, cancel })
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the mesh.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The transfer-time model in force.
    pub fn cost_model(&self) -> &NetworkCostModel {
        &self.cost
    }

    /// The fault plan attached to this mesh, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Overrides the receive deadline (tests exercise short timeouts; the
    /// serving router runs its event loop on a short tick).
    pub fn set_recv_patience(&self, patience: Duration) {
        self.recv_patience.set(patience);
    }

    /// Overrides the pending-buffer bound (tests exercise tiny caps).
    pub fn set_pending_cap(&self, cap: usize) {
        self.pending_cap.set(cap.max(1));
    }

    /// Parks an out-of-order envelope, honoring the pending bound.
    fn buffer_pending(&self, envelope: Envelope) -> Result<(), CommError> {
        let mut pending = self.pending.borrow_mut();
        let cap = self.pending_cap.get();
        if pending.len() >= cap {
            drop(pending);
            self.counters.borrow_mut().pending_overflows += 1;
            return Err(CommError::PendingOverflow { capacity: cap });
        }
        pending.push(envelope);
        Ok(())
    }

    /// Discards every buffered and queued message without accounting —
    /// the serving plane's crash simulation: a process that dies loses
    /// whatever was parked in its socket buffers. The duplicate-detection
    /// seen-set survives (like a transport-persisted sequence cache), so
    /// post-recovery duplicate suppression still works.
    pub fn purge_pending(&self) {
        self.pending.borrow_mut().clear();
        while self.receiver.try_recv().is_ok() {}
    }

    fn next_seq(&self, to: usize) -> u64 {
        let mut seqs = self.send_seq.borrow_mut();
        // lint: allow(slice-index) — seqs has world entries; send() asserts to < world
        let seq = seqs[to];
        seqs[to] += 1; // lint: allow(slice-index) — same bound as the read above
        seq
    }

    /// Sends `payload` to `to` under `tag`.
    pub fn send(&self, to: usize, tag: u64, payload: Bytes) -> Result<(), CommError> {
        assert!(to < self.world, "rank {to} out of range");
        if self.cancel.load(Ordering::Relaxed) {
            return Err(CommError::Cancelled);
        }
        let seq = self.next_seq(to);
        if to == self.rank {
            // Loopback: free, reliable, delivered immediately (but still
            // subject to the pending bound — loopback backpressure too).
            self.buffer_pending(Envelope { from: self.rank as u32, tag, seq, payload })?;
            return Ok(());
        }
        let len = payload.len();
        let Some(plan) = self.faults else {
            // Fault-free fast path: byte accounting identical to the
            // historical panic-on-failure implementation.
            let envelope = Envelope { from: self.rank as u32, tag, seq, payload };
            // lint: allow(slice-index) — senders has world entries; send() asserts to < world
            self.senders[to].send(envelope).map_err(|_| CommError::PeerGone { to })?;
            let mut c = self.counters.borrow_mut();
            c.bytes_sent += len as u64;
            c.messages_sent += 1;
            c.comm_seconds += self.cost.message_time(len);
            return Ok(());
        };
        let slow = plan.slow_factor(self.rank);
        for attempt in 0..plan.max_attempts {
            // Every attempt physically occupies the wire.
            {
                let mut c = self.counters.borrow_mut();
                c.bytes_sent += len as u64;
                c.messages_sent += 1;
                c.comm_seconds += self.cost.message_time(len) * slow;
            }
            if plan.should_drop(self.rank, to, tag, seq, attempt) {
                // Lost in transit: wait out the modelled ack timeout, retry.
                let mut c = self.counters.borrow_mut();
                c.comm_seconds += 2.0 * self.cost.latency_s;
                c.retries += 1;
                continue;
            }
            self.counters.borrow_mut().comm_seconds +=
                plan.delay_for(self.rank, to, tag, seq, attempt);
            let envelope =
                Envelope { from: self.rank as u32, tag, seq, payload: payload.clone() };
            // lint: allow(slice-index) — senders has world entries; send() asserts to < world
            self.senders[to].send(envelope).map_err(|_| CommError::PeerGone { to })?;
            if plan.should_dup(self.rank, to, tag, seq, attempt) {
                // The network delivers a second physical copy with the same
                // sequence number; the receiver will discard it.
                let mut c = self.counters.borrow_mut();
                c.bytes_sent += len as u64;
                c.messages_sent += 1;
                c.comm_seconds += self.cost.message_time(len) * slow;
                drop(c);
                let dup = Envelope { from: self.rank as u32, tag, seq, payload };
                // lint: allow(slice-index) — same bound; duplicate delivery is best-effort
                let _ = self.senders[to].send(dup);
            }
            return Ok(());
        }
        Err(CommError::RetriesExhausted { to, tag, attempts: plan.max_attempts })
    }

    /// Encodes `vals` under `codec` and sends to `to`, recording the
    /// logical-vs-wire byte pair (loopback stays free and unrecorded).
    pub(crate) fn send_f64s(
        &self,
        to: usize,
        tag: u64,
        codec: crate::wire::WireCodec,
        vals: &[f64],
    ) -> Result<(), CommError> {
        let payload = crate::wire::encode(codec, vals);
        if to != self.rank {
            let mut c = self.counters.borrow_mut();
            c.logical_f64_bytes += crate::wire::logical_bytes(vals.len());
            c.wire_f64_bytes += payload.len() as u64;
        }
        self.send(to, tag, payload)
    }

    /// Receives the message from `from` with `tag`, blocking until it
    /// arrives, the run is cancelled, or the receive deadline passes.
    /// Other messages arriving meanwhile are buffered; duplicated
    /// deliveries are accounted and discarded.
    pub fn recv(&self, from: usize, tag: u64) -> Result<Bytes, CommError> {
        // Check the out-of-order buffer first.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) =
                pending.iter().position(|e| e.from as usize == from && e.tag == tag)
            {
                let envelope = pending.swap_remove(pos);
                self.account_recv(from, envelope.payload.len());
                return Ok(envelope.payload);
            }
        }
        loop {
            if self.cancel.load(Ordering::Relaxed) {
                return Err(CommError::Cancelled);
            }
            let envelope = match self.receiver.recv_timeout(self.recv_patience.get()) {
                Ok(envelope) => envelope,
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { from, tag }),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerGone { to: from })
                }
            };
            if envelope.from == CONTROL_FROM {
                return Err(CommError::Cancelled);
            }
            if self.faults.is_some() && !self.admit(&envelope) {
                continue;
            }
            if envelope.from as usize == from && envelope.tag == tag {
                self.account_recv(from, envelope.payload.len());
                return Ok(envelope.payload);
            }
            self.buffer_pending(envelope)?;
        }
    }

    /// Receives the next message carrying **any** of `tags`, from any rank,
    /// returning `(from, tag, payload)`.
    ///
    /// This is the serving-loop primitive: a server rank multiplexing
    /// prediction requests, model publishes, and shutdowns from many client
    /// ranks cannot know which `(from, tag)` pair arrives next, and a
    /// fixed-order `recv` chain would starve whichever client it is not
    /// currently blocked on. Buffered out-of-order messages are drained
    /// first (oldest first), so no request is starved by later arrivals.
    pub fn recv_any(&self, tags: &[u64]) -> Result<(usize, u64, Bytes), CommError> {
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| tags.contains(&e.tag)) {
                let envelope = pending.remove(pos); // oldest match, FIFO
                self.account_recv(envelope.from as usize, envelope.payload.len());
                return Ok((envelope.from as usize, envelope.tag, envelope.payload));
            }
        }
        loop {
            if self.cancel.load(Ordering::Relaxed) {
                return Err(CommError::Cancelled);
            }
            let envelope = match self.receiver.recv_timeout(self.recv_patience.get()) {
                Ok(envelope) => envelope,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout {
                        from: usize::MAX,
                        tag: tags.first().copied().unwrap_or(0),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerGone { to: usize::MAX })
                }
            };
            if envelope.from == CONTROL_FROM {
                return Err(CommError::Cancelled);
            }
            if self.faults.is_some() && !self.admit(&envelope) {
                continue;
            }
            if tags.contains(&envelope.tag) {
                self.account_recv(envelope.from as usize, envelope.payload.len());
                return Ok((envelope.from as usize, envelope.tag, envelope.payload));
            }
            self.buffer_pending(envelope)?;
        }
    }

    /// Duplicate detection at envelope intake: returns `false` (after
    /// accounting the wasted transfer) when `(from, tag, seq)` was already
    /// delivered, so a duplicate can never satisfy a later `recv`.
    fn admit(&self, envelope: &Envelope) -> bool {
        let key = (envelope.from, envelope.tag, envelope.seq);
        if self.seen.borrow_mut().insert(key) {
            return true;
        }
        let mut c = self.counters.borrow_mut();
        c.bytes_received += envelope.payload.len() as u64;
        c.comm_seconds += envelope.payload.len() as f64 / self.cost.bandwidth_bytes_per_s;
        c.duplicates_dropped += 1;
        false
    }

    fn account_recv(&self, from: usize, len: usize) {
        if from == self.rank {
            return; // loopback is free
        }
        let mut c = self.counters.borrow_mut();
        c.bytes_received += len as u64;
        c.comm_seconds += len as f64 / self.cost.bandwidth_bytes_per_s;
    }

    /// Allocates the next collective tag. All workers execute collectives in
    /// the same program order, so the counters stay aligned across ranks.
    pub(crate) fn alloc_collective_tag(&self) -> u64 {
        self.alloc_collective_tags(1)
    }

    /// Allocates a block of `n` consecutive collective tags (multi-step
    /// collectives use one tag per step).
    pub(crate) fn alloc_collective_tags(&self, n: u64) -> u64 {
        let tag = self.next_collective_tag.get();
        self.next_collective_tag.set(tag + n);
        tag
    }

    /// Snapshot of the accumulated counters.
    pub fn counters(&self) -> CommCounters {
        *self.counters.borrow()
    }

    /// Folds the counters into worker stats (called at end of a run).
    pub fn fold_into(&self, stats: &mut crate::stats::WorkerStats) {
        let c = self.counters();
        stats.bytes_sent += c.bytes_sent;
        stats.bytes_received += c.bytes_received;
        stats.messages_sent += c.messages_sent;
        stats.comm_seconds += c.comm_seconds;
        stats.logical_f64_bytes += c.logical_f64_bytes;
        stats.wire_f64_bytes += c.wire_f64_bytes;
        stats.retries += c.retries;
        stats.duplicates_dropped += c.duplicates_dropped;
        stats.pending_overflows += c.pending_overflows;
    }
}

/// Collective tags live in the top half of the tag space; explicit
/// point-to-point protocols should use tags below this.
pub const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

/// Central registry of every manual point-to-point message tag.
///
/// Messages match on `(from, tag)`, so two concurrently in-flight protocols
/// sharing a tag can cross-deliver. Keeping every manual tag here — one
/// named constant per message kind, each a literal below
/// [`COLLECTIVE_TAG_BASE`] — makes uniqueness a property `gbdt-lint` checks
/// (rule `tag-registry`) rather than a convention. Declaring a tag constant
/// anywhere else in the workspace is a lint error.
pub mod protocol {
    /// All-to-all repartition payload: one message per `(sender, receiver)`
    /// pair carrying the receiver's vertical shard during
    /// `horizontal_to_vertical` (the row→column transform of §3.1.1). Sent
    /// once per transform, before any collective traffic, so a single tag
    /// is unambiguous.
    pub const REPARTITION_A2A_TAG: u64 = 0x7261_7274; // "rprt"

    /// Prediction request: client → server, a `gbdt-serve` wire-framed
    /// batch of dense feature rows (request id, row count, f32 cells).
    pub const SERVE_REQUEST_TAG: u64 = 0x7376_7271; // "svrq"

    /// Prediction response: server → client, raw scores for one request
    /// (request id, model version, f64 scores row-major).
    pub const SERVE_RESPONSE_TAG: u64 = 0x7376_7270; // "svrp"

    /// Model publish: trainer → server, a [`GbdtModel::encode_bytes`]
    /// payload to hot-swap in; acked on the response tag.
    pub const SERVE_PUBLISH_TAG: u64 = 0x7376_7062; // "svpb"

    /// Serving shutdown: client → server, drains after the client's last
    /// request (the server exits once every client has said stop).
    pub const SERVE_STOP_TAG: u64 = 0x7376_7374; // "svst"

    /// Routed prediction request: router → replica, the client's request
    /// re-framed under a router-assigned routing id (plus a degraded-mode
    /// tree budget when the replica's queue is past the high-water mark).
    pub const SERVE_ROUTE_TAG: u64 = 0x7376_7275; // "svru"

    /// Replica reply: replica → router, scores for one routed request
    /// (routing id, version, mode, scores); the router rewrites the id and
    /// forwards to the owning client.
    pub const SERVE_REPLY_TAG: u64 = 0x7376_7279; // "svry"

    /// Publish application ack: replica → router, the version a replica
    /// just compiled and swapped in (the router tracks per-replica applied
    /// versions; a stale or failed apply acks version 0).
    pub const SERVE_ACK_TAG: u64 = 0x7376_616b; // "svak"

    /// Crash-recovery resync: replica → router, sent when a replica comes
    /// back from a (simulated) crash and needs the current model; answered
    /// with a versioned publish frame on [`SERVE_PUBLISH_TAG`].
    pub const SERVE_RECOVER_TAG: u64 = 0x7376_7263; // "svrc"

    /// Health probe: router → replica, an empty heartbeat frame; a live
    /// replica answers on [`SERVE_HEALTH_PONG_TAG`].
    pub const SERVE_HEALTH_PING_TAG: u64 = 0x7376_6870; // "svhp"

    /// Health reply: replica → router, carrying the replica's currently
    /// served model version.
    pub const SERVE_HEALTH_PONG_TAG: u64 = 0x7376_6871; // "svhq"

    /// Resolves a human-readable tag name (the `tag=` grammar of
    /// [`crate::fault::FaultPlan::parse`]) to its registered id.
    pub fn by_name(name: &str) -> Option<u64> {
        match name {
            "repartition" => Some(REPARTITION_A2A_TAG),
            "serve_request" => Some(SERVE_REQUEST_TAG),
            "serve_response" => Some(SERVE_RESPONSE_TAG),
            "serve_publish" => Some(SERVE_PUBLISH_TAG),
            "serve_stop" => Some(SERVE_STOP_TAG),
            "serve_route" => Some(SERVE_ROUTE_TAG),
            "serve_reply" => Some(SERVE_REPLY_TAG),
            "serve_ack" => Some(SERVE_ACK_TAG),
            "serve_recover" => Some(SERVE_RECOVER_TAG),
            "health_ping" => Some(SERVE_HEALTH_PING_TAG),
            "health_pong" => Some(SERVE_HEALTH_PONG_TAG),
            _ => None,
        }
    }

    /// Every name [`by_name`] resolves, for error messages and docs.
    pub fn known_names() -> Vec<&'static str> {
        vec![
            "repartition",
            "serve_request",
            "serve_response",
            "serve_publish",
            "serve_stop",
            "serve_route",
            "serve_reply",
            "serve_ack",
            "serve_recover",
            "health_ping",
            "health_pong",
        ]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn recv_any_multiplexes_senders_and_tags() {
        let mesh =
            Comm::mesh(3, NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: 1e9 });
        let (server, c1, c2) = (&mesh[0], &mesh[1], &mesh[2]);
        c1.send(0, 11, Bytes::from_static(b"one")).unwrap();
        c2.send(0, 22, Bytes::from_static(b"two")).unwrap();
        c1.send(0, 33, Bytes::from_static(b"ignored-tag")).unwrap();
        c1.send(0, 11, Bytes::from_static(b"three")).unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            let (from, tag, payload) = server.recv_any(&[11, 22]).unwrap();
            got.push((from, tag, payload.to_vec()));
        }
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, 11, b"one".to_vec()),
                (1, 11, b"three".to_vec()),
                (2, 22, b"two".to_vec()),
            ]
        );
        // The non-matching tag stayed buffered for a targeted recv.
        assert_eq!(&server.recv(1, 33).unwrap()[..], b"ignored-tag");
        // Nothing left: recv_any times out with a typed error.
        server.set_recv_patience(std::time::Duration::from_millis(10));
        assert!(matches!(server.recv_any(&[11, 22]), Err(CommError::Timeout { .. })));
    }

    #[test]
    fn pending_buffer_is_bounded() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let (a, b) = (&mesh[0], &mesh[1]);
        b.set_pending_cap(4);
        // Flood with frames on a tag the receiver is not asking for: each one
        // lands in the pending buffer until the bound trips.
        for i in 0..6u64 {
            a.send(1, 99, Bytes::from(vec![i as u8])).unwrap();
        }
        b.set_recv_patience(std::time::Duration::from_millis(50));
        let err = b.recv(0, 77).unwrap_err();
        assert!(
            matches!(err, CommError::PendingOverflow { capacity: 4 }),
            "expected PendingOverflow, got {err:?}"
        );
        assert_eq!(b.counters().pending_overflows, 1);
        // The buffered (non-overflowing) frames are still deliverable.
        assert_eq!(&b.recv(0, 99).unwrap()[..], &[0u8]);
        // Overflow folds into worker stats.
        let mut stats = crate::stats::WorkerStats::default();
        b.fold_into(&mut stats);
        assert_eq!(stats.pending_overflows, 1);
    }

    #[test]
    fn purge_pending_discards_buffered_and_queued_frames() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let (a, b) = (&mesh[0], &mesh[1]);
        a.send(1, 5, Bytes::from_static(b"buffered")).unwrap();
        // Pull tag 5 into the pending buffer by asking for a different tag.
        b.set_recv_patience(std::time::Duration::from_millis(10));
        assert!(matches!(b.recv(0, 6), Err(CommError::Timeout { .. })));
        a.send(1, 5, Bytes::from_static(b"queued")).unwrap();
        b.purge_pending();
        assert!(matches!(b.recv(0, 5), Err(CommError::Timeout { .. })));
    }

    #[test]
    fn send_recv_roundtrip_with_accounting() {
        let mesh = Comm::mesh(2, NetworkCostModel { latency_s: 0.001, bandwidth_bytes_per_s: 1000.0 });
        let (a, b) = (&mesh[0], &mesh[1]);
        a.send(1, 7, Bytes::from_static(b"hello")).unwrap();
        let got = b.recv(0, 7).unwrap();
        assert_eq!(&got[..], b"hello");
        let ca = a.counters();
        assert_eq!(ca.bytes_sent, 5);
        assert_eq!(ca.messages_sent, 1);
        assert!((ca.comm_seconds - 0.006).abs() < 1e-12);
        let cb = b.counters();
        assert_eq!(cb.bytes_received, 5);
        assert!((cb.comm_seconds - 0.005).abs() < 1e-12);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let (a, b) = (&mesh[0], &mesh[1]);
        a.send(1, 1, Bytes::from_static(b"first")).unwrap();
        a.send(1, 2, Bytes::from_static(b"second")).unwrap();
        // Receive in reverse tag order.
        assert_eq!(&b.recv(0, 2).unwrap()[..], b"second");
        assert_eq!(&b.recv(0, 1).unwrap()[..], b"first");
    }

    #[test]
    fn loopback_is_free() {
        let mesh = Comm::mesh(1, NetworkCostModel::lab_cluster());
        let a = &mesh[0];
        a.send(0, 3, Bytes::from_static(b"self")).unwrap();
        assert_eq!(&a.recv(0, 3).unwrap()[..], b"self");
        let c = a.counters();
        assert_eq!(c.bytes_sent, 0);
        assert_eq!(c.bytes_received, 0);
        assert_eq!(c.comm_seconds, 0.0);
    }

    #[test]
    fn cross_thread_transfer() {
        let mut mesh = Comm::mesh(2, NetworkCostModel::infinite());
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(1, 9, Bytes::from(vec![1u8, 2, 3])).unwrap();
            });
            s.spawn(move || {
                assert_eq!(&b.recv(0, 9).unwrap()[..], &[1, 2, 3]);
            });
        });
    }

    #[test]
    fn fold_into_accumulates_stats() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        mesh[0].send(1, 1, Bytes::from_static(b"xy")).unwrap();
        let mut stats = crate::stats::WorkerStats::default();
        mesh[0].fold_into(&mut stats);
        assert_eq!(stats.bytes_sent, 2);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn recv_times_out_with_typed_error() {
        let mesh = Comm::mesh(2, NetworkCostModel::infinite());
        mesh[1].set_recv_patience(Duration::from_millis(20));
        assert_eq!(mesh[1].recv(0, 1), Err(CommError::Timeout { from: 0, tag: 1 }));
    }

    #[test]
    fn cancellation_wakes_blocked_recv() {
        let (mut mesh, control) = Comm::mesh_with(2, NetworkCostModel::infinite(), None);
        let b = mesh.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                assert_eq!(b.recv(0, 1), Err(CommError::Cancelled));
            });
            std::thread::sleep(Duration::from_millis(10));
            control.cancel_all();
        });
        assert!(control.is_cancelled());
        // Sends after cancellation fail fast too.
        assert_eq!(mesh[0].send(1, 1, Bytes::new()), Err(CommError::Cancelled));
    }

    #[test]
    fn dropped_sends_retry_and_charge_overhead() {
        let plan = FaultPlan::new(11).with_drop(0.5);
        let cost = NetworkCostModel { latency_s: 0.001, bandwidth_bytes_per_s: 1000.0 };
        let (mesh, _control) = Comm::mesh_with(2, cost, Some(plan));
        let (a, b) = (&mesh[0], &mesh[1]);
        let n = 200;
        for i in 0..n {
            a.send(1, i, Bytes::from_static(b"payload!")).unwrap();
            assert_eq!(&b.recv(0, i).unwrap()[..], b"payload!");
        }
        let c = a.counters();
        assert!(c.retries > 0, "expected some dropped attempts at p=0.5");
        // Every retry re-sent the full message and waited out an ack timeout.
        assert_eq!(c.messages_sent, n + c.retries);
        assert_eq!(c.bytes_sent, 8 * (n + c.retries));
        let clean = n as f64 * cost.message_time(8);
        let overhead = c.retries as f64 * (cost.message_time(8) + 2.0 * cost.latency_s);
        assert!((c.comm_seconds - clean - overhead).abs() < 1e-9);
    }

    #[test]
    fn duplicates_are_accounted_then_discarded() {
        let plan = FaultPlan::new(5).with_dup(0.5);
        let (mesh, _control) = Comm::mesh_with(2, NetworkCostModel::infinite(), Some(plan));
        let (a, b) = (&mesh[0], &mesh[1]);
        let n = 200u64;
        for i in 0..n {
            a.send(1, i, Bytes::from_static(b"x")).unwrap();
        }
        for i in 0..n {
            assert_eq!(&b.recv(0, i).unwrap()[..], b"x");
        }
        // Drain any trailing duplicates still queued.
        b.set_recv_patience(Duration::from_millis(10));
        assert!(b.recv(0, n + 1).is_err());
        let cb = b.counters();
        assert!(cb.duplicates_dropped > 0, "expected duplicates at p=0.5");
        assert_eq!(cb.bytes_received, n + cb.duplicates_dropped);
        let ca = a.counters();
        assert_eq!(ca.messages_sent, n + cb.duplicates_dropped);
    }

    #[test]
    fn retries_exhausted_is_reported() {
        let plan = FaultPlan::new(1).with_drop(1.0).with_max_attempts(3);
        let (mesh, _control) = Comm::mesh_with(2, NetworkCostModel::infinite(), Some(plan));
        assert_eq!(
            mesh[0].send(1, 9, Bytes::from_static(b"doomed")),
            Err(CommError::RetriesExhausted { to: 1, tag: 9, attempts: 3 })
        );
        assert_eq!(mesh[0].counters().retries, 3);
    }

    #[test]
    fn inactive_fault_plan_matches_fault_free_accounting() {
        let cost = NetworkCostModel { latency_s: 0.001, bandwidth_bytes_per_s: 1000.0 };
        let (faulty, _c1) = Comm::mesh_with(2, cost, Some(FaultPlan::new(3)));
        let clean = Comm::mesh(2, cost);
        for mesh in [&faulty, &clean] {
            mesh[0].send(1, 7, Bytes::from_static(b"hello")).unwrap();
            mesh[1].recv(0, 7).unwrap();
        }
        let (cf, cc) = (faulty[0].counters(), clean[0].counters());
        assert_eq!(cf.bytes_sent, cc.bytes_sent);
        assert_eq!(cf.messages_sent, cc.messages_sent);
        assert_eq!(cf.comm_seconds, cc.comm_seconds);
    }
}
