//! Histogram wire codecs: how flat f64 buffers are serialized for the
//! collectives (DESIGN.md §4.7).
//!
//! Histogram aggregation ships `D·q·C·2` f64s per built node every layer
//! (§3.1.3) even when most bins are empty, which on high-dimensional sparse
//! data is the bulk of all simulated traffic. This module provides four wire
//! formats behind [`WireCodec`]:
//!
//! * **dense f64** — raw little-endian f64s, `8·n` bytes. The legacy format;
//!   byte counts of existing experiments are unchanged.
//! * **sparse f64** — COO-style `(u32 bin index, f64 value)` pairs for the
//!   nonzero bins only: 1 marker byte + `u32` count + `12·nnz` bytes.
//! * **dense/sparse f32** — the same two layouts with f32 values (DimBoost's
//!   low-precision compressed histograms, §4.1). Lossy; opt-in.
//!
//! [`WireCodec::Auto`] picks sparse iff it is strictly smaller than dense
//! for the message at hand: `5 + 12·nnz < 8·n`, i.e. density below roughly
//! 2/3. [`WireCodec::F32`] is sparsity-aware the same way against its own
//! break-even `5 + 8·nnz < 4·n` (density ≈ 1/2).
//!
//! Formats are self-describing without tagging the dense fast path: sparse
//! payloads start with a marker byte and have odd length (`5 + 12k` or
//! `5 + 8k`), dense payloads have even length (`8n` or `4n`), and the
//! decoder knows `n`, so every case is unambiguous.
//!
//! **Determinism.** Histogram buffers are built by `+=` accumulation from
//! `+0.0`, so they never hold `-0.0`; skipping zero bins on decode-add is
//! therefore bit-identical to adding an explicit `+0.0`, and all merges run
//! in the same rank/segment order as the dense path. The lossless codecs
//! (`Dense`, `Sparse`, `Auto`) are guaranteed to train bit-identical
//! ensembles.

use bytes::Bytes;
pub use gbdt_core::config::WireCodec;

/// First byte of a sparse-f64 payload.
const MARKER_SPARSE_F64: u8 = 0xD5;
/// First byte of a sparse-f32 payload.
const MARKER_SPARSE_F32: u8 = 0xD4;
/// Marker byte + u32 nonzero count.
const SPARSE_HEADER: usize = 5;

/// Converts f64s to raw little-endian bytes (the dense-f64 wire format) via
/// a pre-sized buffer and fixed-width chunk copies.
pub(crate) fn f64s_to_bytes(buf: &[f64]) -> Bytes {
    let mut out = vec![0u8; buf.len() * 8];
    for (dst, v) in out.chunks_exact_mut(8).zip(buf) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Inverse of [`f64s_to_bytes`], pre-sized.
pub(crate) fn bytes_to_f64s(bytes: &Bytes) -> Vec<f64> {
    let mut out = Vec::with_capacity(bytes.len() / 8);
    out.extend(bytes.chunks_exact(8).map(|ch| f64::from_le_bytes(ch.try_into().expect("8-byte chunk"))));
    out
}

/// Bytes the message carries logically: the decoded f64 width.
pub fn logical_bytes(n_elements: usize) -> u64 {
    (n_elements * 8) as u64
}

/// Encoded size of a sparse-f64 payload with `nnz` nonzero bins.
pub fn sparse_f64_bytes(nnz: usize) -> usize {
    SPARSE_HEADER + 12 * nnz
}

/// Encoded size of a sparse-f32 payload with `nnz` nonzero bins.
pub fn sparse_f32_bytes(nnz: usize) -> usize {
    SPARSE_HEADER + 8 * nnz
}

/// Whether [`WireCodec::Auto`] picks the sparse-f64 layout for a buffer of
/// `len` elements with `nnz` nonzeros: sparse must be strictly smaller.
pub fn sparse_wins(len: usize, nnz: usize) -> bool {
    sparse_f64_bytes(nnz) < len * 8
}

fn count_nonzero(buf: &[f64]) -> usize {
    buf.iter().filter(|v| **v != 0.0).count()
}

fn encode_sparse_f64(buf: &[f64], nnz: usize) -> Bytes {
    let mut out = Vec::with_capacity(sparse_f64_bytes(nnz));
    out.push(MARKER_SPARSE_F64);
    out.extend_from_slice(&(nnz as u32).to_le_bytes());
    for (i, v) in buf.iter().enumerate() {
        if *v != 0.0 {
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Bytes::from(out)
}

fn encode_sparse_f32(buf: &[f64], nnz: usize) -> Bytes {
    let mut out = Vec::with_capacity(sparse_f32_bytes(nnz));
    out.push(MARKER_SPARSE_F32);
    out.extend_from_slice(&(nnz as u32).to_le_bytes());
    for (i, v) in buf.iter().enumerate() {
        if *v != 0.0 {
            out.extend_from_slice(&(i as u32).to_le_bytes());
            out.extend_from_slice(&(*v as f32).to_le_bytes());
        }
    }
    Bytes::from(out)
}

fn encode_dense_f32(buf: &[f64]) -> Bytes {
    let mut out = vec![0u8; buf.len() * 4];
    for (dst, v) in out.chunks_exact_mut(4).zip(buf) {
        dst.copy_from_slice(&(*v as f32).to_le_bytes());
    }
    Bytes::from(out)
}

/// Encodes `buf` under `codec`, choosing the layout per message.
pub fn encode(codec: WireCodec, buf: &[f64]) -> Bytes {
    match codec {
        WireCodec::Dense => f64s_to_bytes(buf),
        WireCodec::Sparse => encode_sparse_f64(buf, count_nonzero(buf)),
        WireCodec::Auto => {
            let nnz = count_nonzero(buf);
            if sparse_wins(buf.len(), nnz) {
                encode_sparse_f64(buf, nnz)
            } else {
                f64s_to_bytes(buf)
            }
        }
        WireCodec::F32 => {
            let nnz = count_nonzero(buf);
            if sparse_f32_bytes(nnz) < buf.len() * 4 {
                encode_sparse_f32(buf, nnz)
            } else {
                encode_dense_f32(buf)
            }
        }
    }
}

enum Layout<'a> {
    DenseF64(&'a [u8]),
    DenseF32(&'a [u8]),
    /// `(index, value)` pair bytes; values are f64 or f32 wide.
    SparseF64(&'a [u8]),
    SparseF32(&'a [u8]),
}

/// Classifies a payload for a decode target of `n` elements. Panics on a
/// malformed payload — inside the simulator that is always a protocol bug.
fn classify(bytes: &Bytes, n: usize) -> Layout<'_> {
    if bytes.len() % 2 == 1 {
        let nnz =
            u32::from_le_bytes(bytes[1..SPARSE_HEADER].try_into().expect("4-byte header")) as usize;
        let body = &bytes[SPARSE_HEADER..];
        return match bytes[0] {
            MARKER_SPARSE_F64 => {
                assert_eq!(body.len(), 12 * nnz, "sparse f64 payload length mismatch");
                Layout::SparseF64(body)
            }
            MARKER_SPARSE_F32 => {
                assert_eq!(body.len(), 8 * nnz, "sparse f32 payload length mismatch");
                Layout::SparseF32(body)
            }
            m => panic!("unknown sparse wire marker {m:#x}"),
        };
    }
    if bytes.len() == n * 8 {
        Layout::DenseF64(bytes)
    } else if n > 0 && bytes.len() == n * 4 {
        Layout::DenseF32(bytes)
    } else {
        panic!("dense payload of {} bytes cannot decode into {n} f64s", bytes.len());
    }
}

fn for_each_sparse_f64(body: &[u8], n: usize, mut f: impl FnMut(usize, f64)) {
    for pair in body.chunks_exact(12) {
        let idx = u32::from_le_bytes(pair[..4].try_into().expect("4-byte index")) as usize;
        assert!(idx < n, "sparse index {idx} out of range for {n} elements");
        f(idx, f64::from_le_bytes(pair[4..].try_into().expect("8-byte value")));
    }
}

fn for_each_sparse_f32(body: &[u8], n: usize, mut f: impl FnMut(usize, f64)) {
    for pair in body.chunks_exact(8) {
        let idx = u32::from_le_bytes(pair[..4].try_into().expect("4-byte index")) as usize;
        assert!(idx < n, "sparse index {idx} out of range for {n} elements");
        f(idx, f64::from(f32::from_le_bytes(pair[4..].try_into().expect("4-byte value"))));
    }
}

/// Decodes `bytes` and accumulates (`+=`) into `out`, element-wise. Sparse
/// payloads touch only their nonzero indices, which is bit-identical to the
/// dense add because histogram buffers never hold `-0.0`.
pub fn decode_add(bytes: &Bytes, out: &mut [f64]) {
    match classify(bytes, out.len()) {
        Layout::DenseF64(body) => {
            for (a, ch) in out.iter_mut().zip(body.chunks_exact(8)) {
                *a += f64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
            }
        }
        Layout::DenseF32(body) => {
            for (a, ch) in out.iter_mut().zip(body.chunks_exact(4)) {
                *a += f64::from(f32::from_le_bytes(ch.try_into().expect("4-byte chunk")));
            }
        }
        Layout::SparseF64(body) => for_each_sparse_f64(body, out.len(), |i, v| out[i] += v),
        Layout::SparseF32(body) => for_each_sparse_f32(body, out.len(), |i, v| out[i] += v),
    }
}

/// Decodes `bytes` into `out`, overwriting it completely (absent sparse
/// indices become `0.0`).
pub fn decode_into(bytes: &Bytes, out: &mut [f64]) {
    match classify(bytes, out.len()) {
        Layout::DenseF64(body) => {
            for (a, ch) in out.iter_mut().zip(body.chunks_exact(8)) {
                *a = f64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
            }
        }
        Layout::DenseF32(body) => {
            for (a, ch) in out.iter_mut().zip(body.chunks_exact(4)) {
                *a = f64::from(f32::from_le_bytes(ch.try_into().expect("4-byte chunk")));
            }
        }
        Layout::SparseF64(body) => {
            out.fill(0.0);
            for_each_sparse_f64(body, out.len(), |i, v| out[i] = v);
        }
        Layout::SparseF32(body) => {
            out.fill(0.0);
            for_each_sparse_f32(body, out.len(), |i, v| out[i] = v);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip(codec: WireCodec, buf: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; buf.len()];
        decode_into(&encode(codec, buf), &mut out);
        out
    }

    #[test]
    fn lossless_codecs_roundtrip_exactly() {
        let buf = vec![0.0, 1.5, 0.0, 0.0, -2.25, 1e300, 0.0, f64::MIN_POSITIVE];
        for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
            assert_eq!(roundtrip(codec, &buf), buf, "{codec}");
        }
    }

    #[test]
    fn f32_roundtrips_to_f32_precision() {
        let buf = vec![0.0, 1.5, core::f64::consts::PI, -7.25e10];
        let expected: Vec<f64> = buf.iter().map(|v| f64::from(*v as f32)).collect();
        assert_eq!(roundtrip(WireCodec::F32, &buf), expected);
    }

    #[test]
    fn empty_buffers_encode_and_decode() {
        for codec in WireCodec::ALL {
            let payload = encode(codec, &[]);
            let mut out: Vec<f64> = vec![];
            decode_into(&payload, &mut out);
            decode_add(&payload, &mut out);
        }
    }

    #[test]
    fn auto_picks_the_smaller_layout() {
        // All-zero: sparse header only (5 bytes) beats 8·n.
        let zeros = vec![0.0; 16];
        assert_eq!(encode(WireCodec::Auto, &zeros).len(), sparse_f64_bytes(0));
        // Fully dense: raw f64s win.
        let dense: Vec<f64> = (1..=16).map(f64::from).collect();
        assert_eq!(encode(WireCodec::Auto, &dense).len(), 16 * 8);
        // Auto is never larger than both fixed layouts.
        for nnz in 0..=16usize {
            let mut buf = vec![0.0; 16];
            for slot in buf.iter_mut().take(nnz) {
                *slot = 3.0;
            }
            let auto = encode(WireCodec::Auto, &buf).len();
            assert_eq!(auto, (16 * 8).min(sparse_f64_bytes(nnz)), "nnz={nnz}");
        }
    }

    #[test]
    fn break_even_matches_formula() {
        // 5 + 12·nnz < 8·n ⇔ nnz < (8n − 5) / 12.
        let n = 24;
        for nnz in 0..=n {
            assert_eq!(sparse_wins(n, nnz), 12 * nnz + 5 < 8 * n);
        }
    }

    #[test]
    fn sparse_payloads_have_odd_length_dense_even() {
        let buf = vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0];
        assert_eq!(encode(WireCodec::Dense, &buf).len() % 2, 0);
        assert_eq!(encode(WireCodec::Sparse, &buf).len() % 2, 1);
        assert_eq!(encode(WireCodec::F32, &buf).len() % 2, 1);
        let densebuf = vec![1.0; 6];
        assert_eq!(encode(WireCodec::F32, &densebuf).len() % 2, 0);
    }

    #[test]
    fn decode_add_accumulates() {
        let buf = vec![0.0, 2.0, 0.0, -1.0];
        for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
            let mut acc = vec![10.0, 10.0, 10.0, 10.0];
            decode_add(&encode(codec, &buf), &mut acc);
            assert_eq!(acc, vec![10.0, 12.0, 10.0, 9.0], "{codec}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot decode")]
    fn length_mismatch_panics() {
        let payload = encode(WireCodec::Dense, &[1.0, 2.0]);
        let mut out = vec![0.0; 3];
        decode_into(&payload, &mut out);
    }

    #[test]
    fn bulk_f64_helpers_roundtrip() {
        let buf: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.5 - 10.0).collect();
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&buf)), buf);
        assert_eq!(f64s_to_bytes(&[]).len(), 0);
    }
}
