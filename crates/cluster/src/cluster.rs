//! Scoped-thread cluster harness: runs one closure per worker and collects
//! results plus instrumentation.

use crate::comm::Comm;
use crate::cost::NetworkCostModel;
use crate::stats::{ClusterStats, WorkerStats};

/// Everything a worker closure gets: its communication endpoint and its
/// stats sink.
pub struct WorkerCtx {
    /// This worker's mesh endpoint.
    pub comm: Comm,
    /// This worker's instrumentation (folded with comm counters at exit).
    pub stats: WorkerStats,
}

impl WorkerCtx {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of workers.
    pub fn world(&self) -> usize {
        self.comm.world()
    }

    /// Times `f` as computation in `phase` (convenience passthrough).
    pub fn time<T>(&mut self, phase: crate::stats::Phase, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.stats.add_comp(phase, start.elapsed().as_secs_f64());
        out
    }
}

/// A W-worker simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Number of workers W.
    pub world: usize,
    /// Link model used for communication-time accounting.
    pub cost: NetworkCostModel,
}

impl Cluster {
    /// Cluster with the paper's §5.1 lab link model (1 Gbps).
    pub fn new(world: usize) -> Self {
        Cluster { world, cost: NetworkCostModel::lab_cluster() }
    }

    /// Cluster with an explicit link model.
    pub fn with_cost(world: usize, cost: NetworkCostModel) -> Self {
        Cluster { world, cost }
    }

    /// Runs `f` once per worker on its own OS thread; returns each worker's
    /// output and its stats, indexed by rank.
    ///
    /// A panic on any worker aborts the run and propagates.
    pub fn run<T, F>(&self, f: F) -> (Vec<T>, ClusterStats)
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        let mesh = Comm::mesh(self.world, self.cost);
        let mut slots: Vec<Option<(T, WorkerStats)>> = (0..self.world).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (comm, slot) in mesh.into_iter().zip(slots.iter_mut()) {
                let f = &f;
                scope.spawn(move || {
                    let mut ctx = WorkerCtx { comm, stats: WorkerStats::default() };
                    let out = f(&mut ctx);
                    ctx.comm.fold_into(&mut ctx.stats);
                    *slot = Some((out, ctx.stats));
                });
            }
        });
        let (outputs, stats): (Vec<T>, Vec<WorkerStats>) =
            slots.into_iter().map(Option::unwrap).unzip();
        (outputs, ClusterStats::new(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;
    use bytes::Bytes;

    #[test]
    fn run_returns_rank_ordered_outputs() {
        let cluster = Cluster::new(4);
        let (outputs, _) = cluster.run(|ctx| ctx.rank() * 2);
        assert_eq!(outputs, vec![0, 2, 4, 6]);
    }

    #[test]
    fn workers_really_communicate() {
        let cluster = Cluster::new(3);
        let (outputs, stats) = cluster.run(|ctx| {
            // Ring: send rank to next, receive from prev.
            let next = (ctx.rank() + 1) % ctx.world();
            let prev = (ctx.rank() + ctx.world() - 1) % ctx.world();
            ctx.comm.send(next, 5, Bytes::from(vec![ctx.rank() as u8]));
            ctx.comm.recv(prev, 5)[0] as usize
        });
        assert_eq!(outputs, vec![2, 0, 1]);
        assert_eq!(stats.total_bytes_sent(), 3);
        assert!(stats.comm_seconds() > 0.0);
    }

    #[test]
    fn stats_capture_phase_times() {
        let cluster = Cluster::new(2);
        let (_, stats) = cluster.run(|ctx| {
            ctx.time(Phase::HistogramBuild, || {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(stats.phase_seconds(Phase::HistogramBuild) >= 0.004);
        assert_eq!(stats.workers.len(), 2);
    }

    #[test]
    fn collectives_work_under_harness() {
        let cluster = Cluster::new(4);
        let (outputs, _) = cluster.run(|ctx| {
            let mut buf = vec![ctx.rank() as f64; 8];
            ctx.comm.all_reduce_f64(&mut buf);
            buf[0]
        });
        for o in outputs {
            assert_eq!(o, 6.0); // 0+1+2+3
        }
    }

    #[test]
    fn single_worker_cluster_works() {
        let cluster = Cluster::new(1);
        let (outputs, stats) = cluster.run(|ctx| {
            let mut buf = vec![3.0f64];
            ctx.comm.all_reduce_f64(&mut buf);
            ctx.comm.barrier();
            buf[0]
        });
        assert_eq!(outputs, vec![3.0]);
        assert_eq!(stats.total_bytes_sent(), 0);
    }
}
