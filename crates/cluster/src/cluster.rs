//! Scoped-thread cluster harness: runs one closure per worker and collects
//! results plus instrumentation.
//!
//! The harness supervises its workers: a panic or a [`CommError`] on any
//! rank cancels the peers promptly (no more blocking forever in `recv`
//! behind a dead worker) and propagates the root cause. With a
//! [`FaultPlan`] attached, scheduled crashes unwind with an
//! [`InjectedCrash`] payload which [`Cluster::run_recoverable`] catches:
//! the failed attempt is thrown away and every worker restarts, using the
//! per-rank checkpoint store to fast-forward past completed trees so the
//! in-flight tree is deterministically replayed.

use crate::comm::Comm;
use crate::cost::NetworkCostModel;
use crate::fault::{CommError, FaultPlan, InjectedCrash, MAX_CRASHES};
use crate::stats::{ClusterStats, WorkerStats};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

type CheckpointSlot = Arc<Mutex<Option<Box<dyn Any + Send>>>>;

/// Everything a worker closure gets: its communication endpoint and its
/// stats sink.
pub struct WorkerCtx {
    /// This worker's mesh endpoint.
    pub comm: Comm,
    /// This worker's instrumentation (folded with comm counters at exit).
    pub stats: WorkerStats,
    faults: Option<FaultPlan>,
    crash_fired: Arc<[AtomicBool; MAX_CRASHES]>,
    checkpoint: Option<CheckpointSlot>,
}

impl WorkerCtx {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of workers.
    pub fn world(&self) -> usize {
        self.comm.world()
    }

    /// Times `f` as computation in `phase` (convenience passthrough).
    pub fn time<T>(&mut self, phase: crate::stats::Phase, f: impl FnOnce() -> T) -> T {
        // lint: allow(wall-clock) — measures computation time for modelled stats only
        let start = std::time::Instant::now();
        let out = f();
        self.stats.add_comp(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Fault-injection hook called by trainers at `(tree, layer)`
    /// boundaries. If the attached plan schedules a crash of this rank
    /// here, the worker unwinds with an [`InjectedCrash`] payload — exactly
    /// once across replay attempts, so the recovered run does not re-crash.
    pub fn fault_point(&self, tree: usize, layer: usize) {
        let Some(plan) = self.faults else { return };
        if let Some(i) = plan.crash_index(self.rank(), tree, layer) {
            if !self.crash_fired[i].swap(true, Ordering::SeqCst) {
                // resume_unwind skips the panic hook: an injected crash is
                // scheduled, not a bug, so no backtrace spam.
                resume_unwind(Box::new(InjectedCrash { rank: self.rank(), tree, layer }));
            }
        }
    }

    /// Saves this rank's recovery state (typically `(model, scores, …)`
    /// cloned at a tree boundary). A no-op outside
    /// [`Cluster::run_recoverable`], so fault-free runs pay nothing.
    pub fn save_checkpoint<T: Clone + Send + 'static>(&self, state: &T) {
        if let Some(slot) = &self.checkpoint {
            *slot.lock().expect("checkpoint lock") = Some(Box::new(state.clone()));
        }
    }

    /// Whether a checkpoint store is attached, i.e. the run can actually
    /// crash and replay. Trainers use this to skip the checkpoint clone
    /// entirely on fault-free runs.
    pub fn has_checkpoint_store(&self) -> bool {
        self.checkpoint.is_some()
    }

    /// Restores the most recent [`WorkerCtx::save_checkpoint`] state for
    /// this rank, surviving across replay attempts. `None` on a fresh run
    /// or when the saved type differs.
    pub fn load_checkpoint<T: Clone + Send + 'static>(&self) -> Option<T> {
        let slot = self.checkpoint.as_ref()?;
        let guard = slot.lock().expect("checkpoint lock");
        guard.as_ref()?.downcast_ref::<T>().cloned()
    }
}

/// Why a run attempt failed: a worker panic (with its payload) or the first
/// typed communication error.
enum Failure {
    Panic(Box<dyn Any + Send>),
    Comm(usize, CommError),
}

/// A W-worker simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    /// Number of workers W.
    pub world: usize,
    /// Link model used for communication-time accounting.
    pub cost: NetworkCostModel,
    /// Optional deterministic fault-injection plan.
    pub faults: Option<FaultPlan>,
}

impl Cluster {
    /// Cluster with the paper's §5.1 lab link model (1 Gbps).
    pub fn new(world: usize) -> Self {
        Cluster { world, cost: NetworkCostModel::lab_cluster(), faults: None }
    }

    /// Cluster with an explicit link model.
    pub fn with_cost(world: usize, cost: NetworkCostModel) -> Self {
        Cluster { world, cost, faults: None }
    }

    /// Attaches a fault-injection plan.
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Runs `f` once per worker on its own OS thread; returns each worker's
    /// output and its stats, indexed by rank.
    ///
    /// A panic on any worker cancels the peers and propagates in bounded
    /// time. Scheduled crashes are *not* recovered here — use
    /// [`Cluster::run_recoverable`] for that.
    pub fn run<T, F>(&self, f: F) -> (Vec<T>, ClusterStats)
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        let crash_fired: Arc<[AtomicBool; MAX_CRASHES]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
        match self.run_attempt(&|ctx| Ok(f(ctx)), &crash_fired, None) {
            Ok(out) => out,
            Err((Failure::Panic(payload), _)) => resume_unwind(payload),
            Err((Failure::Comm(rank, e), _)) => panic!("worker {rank} failed: {e}"),
        }
    }

    /// Like [`Cluster::run`], but the closure returns a `Result` so comm
    /// errors surface as values instead of panics.
    pub fn try_run<T, F>(&self, f: F) -> Result<(Vec<T>, ClusterStats), CommError>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> Result<T, CommError> + Sync,
    {
        let crash_fired: Arc<[AtomicBool; MAX_CRASHES]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
        match self.run_attempt(&f, &crash_fired, None) {
            Ok(out) => Ok(out),
            Err((Failure::Panic(payload), _)) => resume_unwind(payload),
            Err((Failure::Comm(_, e), _)) => Err(e),
        }
    }

    /// Runs `f` with crash recovery: when a worker unwinds with an
    /// [`InjectedCrash`] payload, the whole attempt is discarded and every
    /// worker restarts against a fresh mesh. A per-rank checkpoint store
    /// survives attempts, so closures that `save_checkpoint` at tree
    /// boundaries and `load_checkpoint` on entry fast-forward past
    /// completed trees and replay only the in-flight tree. The number of
    /// recoveries and the wall-clock seconds lost to failed attempts are
    /// reported in the returned [`ClusterStats`].
    ///
    /// Non-injected panics and comm errors propagate like [`Cluster::run`].
    pub fn run_recoverable<T, F>(&self, f: F) -> (Vec<T>, ClusterStats)
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> Result<T, CommError> + Sync,
    {
        let crash_fired: Arc<[AtomicBool; MAX_CRASHES]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
        let checkpoints: Vec<CheckpointSlot> =
            (0..self.world).map(|_| Arc::new(Mutex::new(None))).collect();
        let budget = self.faults.map_or(0, |p| p.crashes().count());
        // No scheduled crashes -> no store: fault-free runs skip the
        // per-tree checkpoint clone entirely.
        let store = if budget > 0 { Some(checkpoints.as_slice()) } else { None };
        let mut recoveries = 0u64;
        let mut recovery_seconds = 0.0f64;
        // Per-rank stats of failed attempts: the bytes and seconds a crash
        // wasted are real overhead and must survive into the final report.
        let mut carry: Vec<WorkerStats> = vec![WorkerStats::default(); self.world];
        loop {
            // lint: allow(wall-clock) — measures computation time for modelled stats only
            let start = std::time::Instant::now();
            match self.run_attempt(&f, &crash_fired, store) {
                Ok((outputs, mut stats)) => {
                    for (w, lost) in stats.workers.iter_mut().zip(&carry) {
                        w.merge(lost);
                    }
                    stats.recoveries = recoveries;
                    stats.recovery_seconds = recovery_seconds;
                    return (outputs, stats);
                }
                Err((Failure::Panic(payload), lost)) => {
                    let recoverable = payload.downcast_ref::<InjectedCrash>().is_some()
                        && (recoveries as usize) < budget;
                    if !recoverable {
                        resume_unwind(payload);
                    }
                    for (acc, w) in carry.iter_mut().zip(&lost) {
                        acc.merge(w);
                    }
                    recoveries += 1;
                    recovery_seconds += start.elapsed().as_secs_f64();
                }
                Err((Failure::Comm(rank, e), _)) => panic!("worker {rank} failed: {e}"),
            }
        }
    }

    /// One supervised attempt: spawns the workers, watches a completion
    /// channel, and cancels every peer as soon as the first worker fails.
    ///
    /// On failure the per-rank stats collected before the attempt died are
    /// returned alongside the root cause, so a recovering caller can account
    /// the wasted traffic and computation.
    fn run_attempt<T, F>(
        &self,
        f: &F,
        crash_fired: &Arc<[AtomicBool; MAX_CRASHES]>,
        checkpoints: Option<&[CheckpointSlot]>,
    ) -> Result<(Vec<T>, ClusterStats), (Failure, Vec<WorkerStats>)>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> Result<T, CommError> + Sync,
    {
        let (mesh, control) = Comm::mesh_with(self.world, self.cost, self.faults);
        let mut slots: Vec<Option<(Option<T>, WorkerStats)>> =
            (0..self.world).map(|_| None).collect();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, Option<Failure>)>();
        let failure = std::thread::scope(|scope| {
            for (comm, slot) in mesh.into_iter().zip(slots.iter_mut()) {
                let done = done_tx.clone();
                let faults = self.faults;
                let crash_fired = Arc::clone(crash_fired);
                let checkpoint = checkpoints.map(|c| Arc::clone(&c[comm.rank()]));
                scope.spawn(move || {
                    let rank = comm.rank();
                    let mut ctx = WorkerCtx {
                        comm,
                        stats: WorkerStats::default(),
                        faults,
                        crash_fired,
                        checkpoint,
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                    ctx.comm.fold_into(&mut ctx.stats);
                    let (out, outcome) = match result {
                        Ok(Ok(out)) => (Some(out), None),
                        Ok(Err(e)) => (None, Some(Failure::Comm(rank, e))),
                        Err(payload) => (None, Some(Failure::Panic(payload))),
                    };
                    *slot = Some((out, std::mem::take(&mut ctx.stats)));
                    // The supervisor (below) outlives every worker; a send
                    // failure would mean it already stopped listening.
                    let _ = done.send((rank, outcome));
                });
            }
            drop(done_tx);
            // Supervise: collect one completion per worker; cancel the rest
            // the moment the first failure lands. Workers blocked in `recv`
            // wake with `CommError::Cancelled`, so the scope exits in
            // bounded time instead of hanging behind a dead peer.
            let mut failures: Vec<Failure> = Vec::new();
            while let Ok((_rank, outcome)) = done_rx.recv() {
                if let Some(failure) = outcome {
                    if failures.is_empty() {
                        control.cancel_all();
                    }
                    failures.push(failure);
                }
            }
            pick_root_cause(failures)
        });
        if let Some(failure) = failure {
            let lost = slots
                .into_iter()
                .map(|slot| slot.map(|(_, stats)| stats).unwrap_or_default())
                .collect();
            return Err((failure, lost));
        }
        let (outputs, stats): (Vec<T>, Vec<WorkerStats>) = slots
            .into_iter()
            .map(|slot| {
                let (out, stats) = slot.expect("worker finished");
                (out.expect("worker finished without failure"), stats)
            })
            .unzip();
        Ok((outputs, ClusterStats::new(stats)))
    }
}

/// Chooses the failure to report: an injected crash beats everything (it is
/// the recoverable root cause even if a peer noticed trouble first), then
/// any real panic, then the first comm error that is not a secondary
/// cancellation, then whatever is left.
fn pick_root_cause(failures: Vec<Failure>) -> Option<Failure> {
    let mut fallback: Option<Failure> = None;
    let mut comm: Option<Failure> = None;
    let mut panic: Option<Failure> = None;
    for failure in failures {
        match &failure {
            Failure::Panic(payload) => {
                if payload.downcast_ref::<InjectedCrash>().is_some() {
                    return Some(failure);
                }
                if panic.is_none() {
                    panic = Some(failure);
                }
            }
            Failure::Comm(_, CommError::Cancelled) => {
                if fallback.is_none() {
                    fallback = Some(failure);
                }
            }
            Failure::Comm(..) => {
                if comm.is_none() {
                    comm = Some(failure);
                }
            }
        }
    }
    panic.or(comm).or(fallback)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::stats::Phase;
    use bytes::Bytes;

    #[test]
    fn run_returns_rank_ordered_outputs() {
        let cluster = Cluster::new(4);
        let (outputs, _) = cluster.run(|ctx| ctx.rank() * 2);
        assert_eq!(outputs, vec![0, 2, 4, 6]);
    }

    #[test]
    fn workers_really_communicate() {
        let cluster = Cluster::new(3);
        let (outputs, stats) = cluster.run(|ctx| {
            // Ring: send rank to next, receive from prev.
            let next = (ctx.rank() + 1) % ctx.world();
            let prev = (ctx.rank() + ctx.world() - 1) % ctx.world();
            ctx.comm.send(next, 5, Bytes::from(vec![ctx.rank() as u8])).unwrap();
            ctx.comm.recv(prev, 5).unwrap()[0] as usize
        });
        assert_eq!(outputs, vec![2, 0, 1]);
        assert_eq!(stats.total_bytes_sent(), 3);
        assert!(stats.comm_seconds() > 0.0);
    }

    #[test]
    fn stats_capture_phase_times() {
        let cluster = Cluster::new(2);
        let (_, stats) = cluster.run(|ctx| {
            ctx.time(Phase::HistogramBuild, || {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(stats.phase_seconds(Phase::HistogramBuild) >= 0.004);
        assert_eq!(stats.workers.len(), 2);
    }

    #[test]
    fn collectives_work_under_harness() {
        let cluster = Cluster::new(4);
        let (outputs, _) = cluster.run(|ctx| {
            let mut buf = vec![ctx.rank() as f64; 8];
            ctx.comm.all_reduce_f64(&mut buf).unwrap();
            buf[0]
        });
        for o in outputs {
            assert_eq!(o, 6.0); // 0+1+2+3
        }
    }

    #[test]
    fn single_worker_cluster_works() {
        let cluster = Cluster::new(1);
        let (outputs, stats) = cluster.run(|ctx| {
            let mut buf = vec![3.0f64];
            ctx.comm.all_reduce_f64(&mut buf).unwrap();
            ctx.comm.barrier().unwrap();
            buf[0]
        });
        assert_eq!(outputs, vec![3.0]);
        assert_eq!(stats.total_bytes_sent(), 0);
    }

    /// Regression: a single-worker panic used to leave every peer blocked
    /// forever in `recv` (all endpoints hold senders to each other, so the
    /// channel never disconnects). The supervisor must cancel peers and
    /// fail the run in bounded time.
    #[test]
    fn single_worker_panic_fails_run_in_bounded_time() {
        let cluster = Cluster::new(3);
        let start = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            cluster.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("worker 1 exploded");
                }
                // Peers wait on a message the dead worker will never send.
                let _ = ctx.comm.recv(1, 77);
            })
        }));
        let payload = result.expect_err("run must fail");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker 1 exploded");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "propagation took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn try_run_surfaces_comm_errors_as_values() {
        let cluster = Cluster::new(2);
        let err = cluster
            .try_run(|ctx| {
                if ctx.rank() == 0 {
                    Err(CommError::RetriesExhausted { to: 1, tag: 9, attempts: 3 })
                } else {
                    ctx.comm.recv(0, 1).map(|_| ())
                }
            })
            .unwrap_err();
        assert_eq!(err, CommError::RetriesExhausted { to: 1, tag: 9, attempts: 3 });
    }

    #[test]
    fn run_recoverable_restarts_after_injected_crash() {
        let plan = FaultPlan::new(17).with_crash(1, 2, 0);
        let cluster = Cluster::new(3).with_faults(Some(plan));
        let (outputs, stats) = cluster.run_recoverable(|ctx| {
            // Fast-forward past trees already completed before the crash.
            let mut done: Vec<usize> = ctx.load_checkpoint().unwrap_or_default();
            for tree in done.len()..4 {
                ctx.fault_point(tree, 0);
                done.push(tree * 10 + ctx.rank());
                ctx.save_checkpoint(&done);
            }
            Ok(done)
        });
        assert_eq!(stats.recoveries, 1);
        assert!(stats.recovery_seconds >= 0.0);
        for (rank, out) in outputs.iter().enumerate() {
            assert_eq!(out, &vec![rank, 10 + rank, 20 + rank, 30 + rank]);
        }
    }

    #[test]
    fn run_recoverable_without_faults_is_plain() {
        let cluster = Cluster::new(2);
        let (outputs, stats) = cluster.run_recoverable(|ctx| Ok(ctx.rank()));
        assert_eq!(outputs, vec![0, 1]);
        assert_eq!(stats.recoveries, 0);
        assert_eq!(stats.recovery_seconds, 0.0);
    }

    #[test]
    fn real_panics_are_not_recovered() {
        let plan = FaultPlan::new(1).with_crash(0, 0, 0);
        let cluster = Cluster::new(2).with_faults(Some(plan));
        let result = catch_unwind(AssertUnwindSafe(|| {
            cluster.run_recoverable(|ctx| -> Result<(), CommError> {
                if ctx.rank() == 1 {
                    panic!("genuine bug");
                }
                let _ = ctx.comm.recv(1, 3);
                Ok(())
            })
        }));
        assert!(result.is_err());
    }
}
