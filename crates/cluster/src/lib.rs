//! Simulated distributed substrate for the GBDT reproduction.
//!
//! The paper runs on Spark clusters; Rust has no mature distributed ML
//! framework, so this crate provides the substitute documented in
//! `DESIGN.md`: a *cluster-in-a-process*. Each worker is a real OS thread
//! with a private [`comm::Comm`] endpoint; workers exchange **serialized
//! byte messages** over channels, so every byte count the cost analysis
//! depends on is exact. Because channel transfers on one machine take
//! microseconds, network *transfer time* is modelled by a configurable
//! [`cost::NetworkCostModel`] (default 1 Gbps / 0.1 ms, matching the paper's
//! §5.1 lab cluster), while *computation time* is measured wall-clock per
//! worker. The two are reported separately everywhere (Figure 10's
//! Comp/Comm breakdown).
//!
//! * [`cost`] — latency + bandwidth transfer-time model.
//! * [`comm`] — point-to-point endpoint with tag matching and byte
//!   accounting.
//! * [`collectives`] — broadcast, gather, all-gather, ring all-reduce, ring
//!   reduce-scatter (the aggregation methods of §3.1.3).
//! * [`wire`] — pluggable histogram wire codecs (dense/sparse/f32) with
//!   adaptive per-message selection, used by the codec-aware collectives.
//! * [`ps`] — parameter-server-style sharded aggregation (DimBoost, §4.1).
//! * [`cluster`] — scoped-thread harness running one closure per worker,
//!   with a supervisor that cancels peers on failure and replays crashed
//!   attempts from per-tree checkpoints.
//! * [`fault`] — deterministic seed-driven fault injection (drop / dup /
//!   delay / crash / straggler) and the typed [`fault::CommError`].
//! * [`stats`] — per-worker phase timers, byte counters, memory gauges,
//!   retry/recovery accounting.

pub mod cluster;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod ps;
pub mod stats;
pub mod wire;

pub use cluster::{Cluster, WorkerCtx};
pub use comm::{protocol, Comm};
pub use cost::NetworkCostModel;
pub use fault::{CommError, FaultPlan, InjectedCrash};
pub use stats::{Phase, WorkerStats};
pub use wire::WireCodec;
