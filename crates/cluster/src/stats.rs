//! Per-worker instrumentation: phase timers, communication accounting, and
//! memory gauges — the raw material behind every bar in Figure 10.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Training phases whose computation time is tracked separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Quantile sketching and candidate split generation.
    Sketch,
    /// Horizontal-to-vertical transformation (encode / repartition / merge).
    Transform,
    /// Gradient computation.
    Gradients,
    /// Histogram construction (the dominant cost, §3.2.4).
    HistogramBuild,
    /// Split finding on histograms.
    SplitFind,
    /// Node splitting / index update.
    NodeSplit,
    /// Prediction updates and metric evaluation.
    Predict,
    /// Anything else.
    Other,
}

/// All phases, in display order.
pub const ALL_PHASES: [Phase; 8] = [
    Phase::Sketch,
    Phase::Transform,
    Phase::Gradients,
    Phase::HistogramBuild,
    Phase::SplitFind,
    Phase::NodeSplit,
    Phase::Predict,
    Phase::Other,
];

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Sketch => 0,
            Phase::Transform => 1,
            Phase::Gradients => 2,
            Phase::HistogramBuild => 3,
            Phase::SplitFind => 4,
            Phase::NodeSplit => 5,
            Phase::Predict => 6,
            Phase::Other => 7,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Sketch => "sketch",
            Phase::Transform => "transform",
            Phase::Gradients => "gradients",
            Phase::HistogramBuild => "hist_build",
            Phase::SplitFind => "split_find",
            Phase::NodeSplit => "node_split",
            Phase::Predict => "predict",
            Phase::Other => "other",
        }
    }
}

/// Per-worker measurements for one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Wall-clock computation seconds per phase.
    pub comp_seconds: [f64; 8],
    /// Modelled communication seconds (latency + bytes/bandwidth).
    pub comm_seconds: f64,
    /// Exact bytes sent.
    pub bytes_sent: u64,
    /// Exact bytes received.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes used to store the worker's (binned) data shard.
    pub data_bytes: u64,
    /// Peak bytes of simultaneously live gradient histograms.
    pub histogram_peak_bytes: u64,
    /// Bytes of auxiliary index structures.
    pub index_bytes: u64,
    /// Intra-worker threads used for histogram build / split finding.
    pub threads: u64,
    /// Wall-clock seconds spent inside multi-threaded sections.
    pub parallel_wall_seconds: f64,
    /// Summed per-thread busy seconds inside multi-threaded sections.
    pub parallel_busy_seconds: f64,
    /// Logical (decoded f64) bytes of codec-mediated collective payloads —
    /// what the dense wire would have sent.
    pub logical_f64_bytes: u64,
    /// Encoded bytes actually sent for those payloads.
    pub wire_f64_bytes: u64,
    /// Per-tree-layer logical bytes of histogram aggregation (index =
    /// layer − 1, summed across trees); see [`WorkerStats::record_layer_bytes`].
    pub layer_logical_bytes: Vec<u64>,
    /// Per-tree-layer wire bytes of histogram aggregation.
    pub layer_wire_bytes: Vec<u64>,
    /// Send attempts dropped by fault injection and retried.
    pub retries: u64,
    /// Duplicated deliveries detected and discarded.
    pub duplicates_dropped: u64,
    /// Pending-buffer overflows hit by an out-of-order consumer.
    pub pending_overflows: u64,
}

impl WorkerStats {
    /// Total computation seconds across phases.
    pub fn comp_total(&self) -> f64 {
        self.comp_seconds.iter().sum()
    }

    /// Computation seconds of one phase.
    pub fn comp(&self, phase: Phase) -> f64 {
        self.comp_seconds[phase.index()]
    }

    /// Adds computation time to a phase.
    pub fn add_comp(&mut self, phase: Phase, seconds: f64) {
        self.comp_seconds[phase.index()] += seconds;
    }

    /// Times `f` as computation in `phase`.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_comp(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Intra-worker parallel speedup: per-thread busy seconds divided by
    /// wall-clock seconds of the parallel sections (1.0 when no parallel
    /// section ran).
    pub fn parallel_speedup(&self) -> f64 {
        if self.parallel_wall_seconds > 0.0 {
            self.parallel_busy_seconds / self.parallel_wall_seconds
        } else {
            1.0
        }
    }

    /// Adds one layer's histogram-aggregation byte pair (0-based layer index
    /// into the growing loop; the root layer never aggregates). Vectors grow
    /// on demand so trees of different depth can share one stats object.
    pub fn record_layer_bytes(&mut self, layer: usize, logical: u64, wire: u64) {
        if self.layer_logical_bytes.len() <= layer {
            self.layer_logical_bytes.resize(layer + 1, 0);
            self.layer_wire_bytes.resize(layer + 1, 0);
        }
        self.layer_logical_bytes[layer] += logical;
        self.layer_wire_bytes[layer] += wire;
    }

    /// Compression ratio of the wire codec on this worker's codec-mediated
    /// payloads: logical / wire (1.0 when nothing codec-mediated was sent).
    pub fn wire_compression(&self) -> f64 {
        if self.wire_f64_bytes > 0 {
            self.logical_f64_bytes as f64 / self.wire_f64_bytes as f64
        } else {
            1.0
        }
    }

    /// Merges another worker's stats (for averaging across runs).
    pub fn merge(&mut self, other: &WorkerStats) {
        for (a, b) in self.comp_seconds.iter_mut().zip(&other.comp_seconds) {
            *a += b;
        }
        self.comm_seconds += other.comm_seconds;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.data_bytes = self.data_bytes.max(other.data_bytes);
        self.histogram_peak_bytes = self.histogram_peak_bytes.max(other.histogram_peak_bytes);
        self.index_bytes = self.index_bytes.max(other.index_bytes);
        self.threads = self.threads.max(other.threads);
        self.parallel_wall_seconds += other.parallel_wall_seconds;
        self.parallel_busy_seconds += other.parallel_busy_seconds;
        self.logical_f64_bytes += other.logical_f64_bytes;
        self.wire_f64_bytes += other.wire_f64_bytes;
        for (layer, (&logical, &wireb)) in
            other.layer_logical_bytes.iter().zip(&other.layer_wire_bytes).enumerate()
        {
            self.record_layer_bytes(layer, logical, wireb);
        }
        self.retries += other.retries;
        self.duplicates_dropped += other.duplicates_dropped;
        self.pending_overflows += other.pending_overflows;
    }
}

/// Cluster-level summary over per-worker stats.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Per-worker stats, by rank.
    pub workers: Vec<WorkerStats>,
    /// Worker-crash recoveries performed by the run supervisor.
    pub recoveries: u64,
    /// Wall-clock seconds spent in failed attempts that were replayed.
    pub recovery_seconds: f64,
}

impl ClusterStats {
    /// Wraps per-worker stats.
    pub fn new(workers: Vec<WorkerStats>) -> Self {
        ClusterStats { workers, recoveries: 0, recovery_seconds: 0.0 }
    }

    /// Slowest worker's total computation time (the straggler that gates a
    /// synchronous layer).
    pub fn comp_seconds(&self) -> f64 {
        self.workers.iter().map(WorkerStats::comp_total).fold(0.0, f64::max)
    }

    /// Slowest worker's modelled communication time.
    pub fn comm_seconds(&self) -> f64 {
        self.workers.iter().map(|w| w.comm_seconds).fold(0.0, f64::max)
    }

    /// Total bytes sent across the cluster.
    pub fn total_bytes_sent(&self) -> u64 {
        self.workers.iter().map(|w| w.bytes_sent).sum()
    }

    /// Total fault-injection retries across the cluster.
    pub fn total_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.retries).sum()
    }

    /// Total duplicated deliveries discarded across the cluster.
    pub fn total_duplicates_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.duplicates_dropped).sum()
    }

    /// Total pending-buffer overflows across the cluster.
    pub fn total_pending_overflows(&self) -> u64 {
        self.workers.iter().map(|w| w.pending_overflows).sum()
    }

    /// Largest per-worker data storage.
    pub fn max_data_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.data_bytes).max().unwrap_or(0)
    }

    /// Largest per-worker peak histogram storage.
    pub fn max_histogram_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.histogram_peak_bytes).max().unwrap_or(0)
    }

    /// Slowest worker's computation within one phase.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.workers.iter().map(|w| w.comp(phase)).fold(0.0, f64::max)
    }

    /// Total logical (decoded f64) bytes of codec-mediated payloads across
    /// the cluster — what the dense wire would have sent.
    pub fn total_logical_f64_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.logical_f64_bytes).sum()
    }

    /// Total encoded bytes actually sent for codec-mediated payloads.
    pub fn total_wire_f64_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.wire_f64_bytes).sum()
    }

    /// Cluster-wide compression ratio of the wire codec: logical / wire
    /// (1.0 when nothing codec-mediated was sent).
    pub fn wire_compression(&self) -> f64 {
        let wireb = self.total_wire_f64_bytes();
        if wireb > 0 {
            self.total_logical_f64_bytes() as f64 / wireb as f64
        } else {
            1.0
        }
    }

    /// Per-tree-layer `(logical, wire)` histogram-aggregation bytes summed
    /// across workers; index = layer position in the growing loop.
    pub fn layer_wire_bytes(&self) -> Vec<(u64, u64)> {
        let depth =
            self.workers.iter().map(|w| w.layer_logical_bytes.len()).max().unwrap_or(0);
        let mut out = vec![(0u64, 0u64); depth];
        for w in &self.workers {
            for (layer, (&logical, &wireb)) in
                w.layer_logical_bytes.iter().zip(&w.layer_wire_bytes).enumerate()
            {
                out[layer].0 += logical;
                out[layer].1 += wireb;
            }
        }
        out
    }

    /// Cluster-wide intra-worker parallel speedup: total busy seconds over
    /// total wall seconds of parallel sections (1.0 when nothing ran
    /// multi-threaded).
    pub fn parallel_speedup(&self) -> f64 {
        let wall: f64 = self.workers.iter().map(|w| w.parallel_wall_seconds).sum();
        let busy: f64 = self.workers.iter().map(|w| w.parallel_busy_seconds).sum();
        if wall > 0.0 {
            busy / wall
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accounting() {
        let mut s = WorkerStats::default();
        s.add_comp(Phase::HistogramBuild, 1.5);
        s.add_comp(Phase::HistogramBuild, 0.5);
        s.add_comp(Phase::SplitFind, 0.25);
        assert_eq!(s.comp(Phase::HistogramBuild), 2.0);
        assert_eq!(s.comp_total(), 2.25);
    }

    #[test]
    fn time_measures_closures() {
        let mut s = WorkerStats::default();
        let v = s.time(Phase::Other, || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(s.comp(Phase::Other) >= 0.009);
    }

    #[test]
    fn cluster_summary_takes_stragglers() {
        let mut a = WorkerStats::default();
        a.add_comp(Phase::Other, 1.0);
        a.comm_seconds = 3.0;
        a.bytes_sent = 100;
        a.histogram_peak_bytes = 10;
        let mut b = WorkerStats::default();
        b.add_comp(Phase::Other, 2.0);
        b.comm_seconds = 1.0;
        b.bytes_sent = 200;
        b.histogram_peak_bytes = 50;
        let c = ClusterStats::new(vec![a, b]);
        assert_eq!(c.comp_seconds(), 2.0);
        assert_eq!(c.comm_seconds(), 3.0);
        assert_eq!(c.total_bytes_sent(), 300);
        assert_eq!(c.max_histogram_bytes(), 50);
        assert_eq!(c.phase_seconds(Phase::Other), 2.0);
    }

    #[test]
    fn merge_accumulates_times_and_maxes_memory() {
        let mut a = WorkerStats::default();
        a.add_comp(Phase::Sketch, 1.0);
        a.histogram_peak_bytes = 100;
        let mut b = WorkerStats::default();
        b.add_comp(Phase::Sketch, 2.0);
        b.histogram_peak_bytes = 50;
        a.merge(&b);
        assert_eq!(a.comp(Phase::Sketch), 3.0);
        assert_eq!(a.histogram_peak_bytes, 100);
    }

    #[test]
    fn parallel_speedup_is_busy_over_wall() {
        let mut w = WorkerStats::default();
        assert_eq!(w.parallel_speedup(), 1.0); // no parallel section yet
        w.threads = 4;
        w.parallel_wall_seconds = 2.0;
        w.parallel_busy_seconds = 6.0;
        assert!((w.parallel_speedup() - 3.0).abs() < 1e-12);
        let other = WorkerStats {
            threads: 2,
            parallel_wall_seconds: 1.0,
            parallel_busy_seconds: 1.0,
            ..WorkerStats::default()
        };
        w.merge(&other);
        assert_eq!(w.threads, 4); // max, not sum
        let c = ClusterStats::new(vec![w]);
        assert!((c.parallel_speedup() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wire_accounting_ratios_and_merge() {
        assert_eq!(WorkerStats::default().wire_compression(), 1.0); // nothing codec-mediated
        let mut w = WorkerStats {
            logical_f64_bytes: 800,
            wire_f64_bytes: 200,
            ..WorkerStats::default()
        };
        w.record_layer_bytes(0, 500, 100);
        w.record_layer_bytes(2, 300, 100); // skipping a layer zero-fills it
        assert_eq!(w.wire_compression(), 4.0);
        assert_eq!(w.layer_logical_bytes, vec![500, 0, 300]);

        let mut other = WorkerStats {
            logical_f64_bytes: 200,
            wire_f64_bytes: 50,
            ..WorkerStats::default()
        };
        other.record_layer_bytes(1, 200, 50);
        w.merge(&other);
        assert_eq!(w.logical_f64_bytes, 1000);
        assert_eq!(w.layer_logical_bytes, vec![500, 200, 300]);

        let c = ClusterStats::new(vec![w, other]);
        assert_eq!(c.total_logical_f64_bytes(), 1200);
        assert_eq!(c.total_wire_f64_bytes(), 300);
        assert_eq!(c.wire_compression(), 4.0);
        assert_eq!(c.layer_wire_bytes(), vec![(500, 100), (400, 100), (300, 100)]);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ALL_PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), ALL_PHASES.len());
    }
}
