//! Deterministic, seed-driven fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: per-message
//! drop / duplicate / delay probabilities, scheduled worker crashes at tree
//! or layer boundaries, and per-rank straggler slowdowns. Every decision is
//! a pure hash of `(seed, kind, from, to, tag, seq, attempt)`, so the same
//! plan replays the same faults on every run — chaos tests are reproducible
//! and recovery is deterministic.
//!
//! The plan is `Copy` (fixed-capacity crash/slow tables) so [`crate::Cluster`]
//! stays `Copy` and configs can pass it by value.

/// Typed error produced by the communication layer instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The run was cancelled (a peer failed and the supervisor told every
    /// worker to stop).
    Cancelled,
    /// No matching message arrived within the receive deadline.
    Timeout {
        /// Rank we were waiting on.
        from: usize,
        /// Tag we were waiting for.
        tag: u64,
    },
    /// The destination endpoint no longer exists.
    PeerGone {
        /// Rank whose endpoint is gone.
        to: usize,
    },
    /// A send was dropped (by fault injection) more times than the retry
    /// budget allows.
    RetriesExhausted {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The endpoint's out-of-order pending buffer is full: a slow consumer
    /// (or a dup-heavy fault plan) has buffered more unconsumed messages
    /// than the bound allows. Backpressure must surface as an error, not
    /// as unbounded memory growth.
    PendingOverflow {
        /// The configured buffer capacity that was exceeded.
        capacity: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Cancelled => write!(f, "run cancelled by supervisor"),
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for message from rank {from} tag {tag}")
            }
            CommError::PeerGone { to } => write!(f, "peer endpoint {to} is gone"),
            CommError::RetriesExhausted { to, tag, attempts } => {
                write!(f, "send to rank {to} tag {tag} dropped {attempts} times; giving up")
            }
            CommError::PendingOverflow { capacity } => {
                write!(f, "pending message buffer overflowed its {capacity}-message bound")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Panic payload used by [`FaultPlan`]-scheduled crashes. The supervisor in
/// [`crate::Cluster`] downcasts worker panics to this type to distinguish an
/// injected (recoverable) crash from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Rank that crashed.
    pub rank: usize,
    /// Tree index at which the crash fired.
    pub tree: usize,
    /// Layer index at which the crash fired.
    pub layer: usize,
}

/// Maximum scheduled crashes per plan (fixed so the plan stays `Copy`).
pub const MAX_CRASHES: usize = 4;
/// Maximum straggler entries per plan.
pub const MAX_SLOW: usize = 4;
/// Maximum tag-scope entries per plan (fixed so the plan stays `Copy`).
pub const FAULT_SCOPE_CAP: usize = 8;

/// A scheduled worker crash at a `(tree, layer)` boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPoint {
    /// Rank to crash.
    pub rank: u16,
    /// Tree index (0-based) at which to crash.
    pub tree: u32,
    /// Layer index (0-based) within the tree; the default spec layer is 1,
    /// i.e. genuinely mid-tree.
    pub layer: u32,
}

/// A deterministic fault-injection plan. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-message decision.
    pub seed: u64,
    /// Probability a point-to-point send attempt is dropped.
    pub drop_p: f64,
    /// Probability a delivered message is duplicated on the wire.
    pub dup_p: f64,
    /// Probability a delivered message is delayed.
    pub delay_p: f64,
    /// Modelled delay seconds charged when a delay fires.
    pub delay_s: f64,
    /// Retry budget per message before `RetriesExhausted`.
    pub max_attempts: u32,
    crashes: [Option<CrashPoint>; MAX_CRASHES],
    slow: [Option<(u16, f32)>; MAX_SLOW],
    /// When any entry is set, drop/dup/delay decisions fire only for
    /// messages whose tag is listed here (`tag=` in the spec grammar);
    /// crash and slow entries are unaffected. Empty = every tag.
    tag_scope: [Option<u64>; FAULT_SCOPE_CAP],
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// Decision kinds, mixed into the hash so drop/dup/delay draws are
/// independent of each other.
const KIND_DROP: u64 = 1;
const KIND_DUP: u64 = 2;
const KIND_DELAY: u64 = 3;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_s: 0.0,
            max_attempts: 12,
            crashes: [None; MAX_CRASHES],
            slow: [None; MAX_SLOW],
            tag_scope: [None; FAULT_SCOPE_CAP],
        }
    }

    /// Sets the per-attempt drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the delay probability and modelled delay seconds.
    pub fn with_delay(mut self, p: f64, seconds: f64) -> Self {
        self.delay_p = p;
        self.delay_s = seconds;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Schedules a crash of `rank` at the start of layer `layer` of tree
    /// `tree`. Panics if the plan already holds [`MAX_CRASHES`] crashes.
    pub fn with_crash(mut self, rank: usize, tree: usize, layer: usize) -> Self {
        let slot = self
            .crashes
            .iter_mut()
            .find(|c| c.is_none())
            // lint: allow(panic-call) — plan-construction misuse is a test-setup bug, not a comm fault
            .unwrap_or_else(|| panic!("fault plan holds at most {MAX_CRASHES} crashes"));
        *slot = Some(CrashPoint { rank: rank as u16, tree: tree as u32, layer: layer as u32 });
        self
    }

    /// Marks `rank` as a straggler: its modelled per-message network time is
    /// multiplied by `factor`. Panics if the table is full.
    pub fn with_slow(mut self, rank: usize, factor: f64) -> Self {
        let slot = self
            .slow
            .iter_mut()
            .find(|s| s.is_none())
            // lint: allow(panic-call) — plan-construction misuse is a test-setup bug, not a comm fault
            .unwrap_or_else(|| panic!("fault plan holds at most {MAX_SLOW} stragglers"));
        *slot = Some((rank as u16, factor as f32));
        self
    }

    /// Restricts drop/dup/delay decisions to messages carrying `tag`
    /// (repeatable up to [`FAULT_SCOPE_CAP`] tags). Panics if the table is
    /// full; re-adding a tag already in scope is a no-op.
    pub fn with_tag(mut self, tag: u64) -> Self {
        if self.tag_scope.iter().flatten().any(|&t| t == tag) {
            return self;
        }
        let slot = self
            .tag_scope
            .iter_mut()
            .find(|t| t.is_none())
            // lint: allow(panic-call) — plan-construction misuse is a test-setup bug, not a comm fault
            .unwrap_or_else(|| panic!("fault plan scopes at most {FAULT_SCOPE_CAP} tags"));
        *slot = Some(tag);
        self
    }

    /// Whether drop/dup/delay decisions apply to messages carrying `tag`:
    /// true when the scope table is empty (no `tag=` items — every tag) or
    /// when `tag` is listed.
    pub fn targets_tag(&self, tag: u64) -> bool {
        let mut any = false;
        for t in self.tag_scope.iter().flatten() {
            if *t == tag {
                return true;
            }
            any = true;
        }
        !any
    }

    /// The scoped tags, in insertion order (empty = every tag).
    pub fn tag_scope(&self) -> impl Iterator<Item = u64> + '_ {
        self.tag_scope.iter().flatten().copied()
    }

    /// Whether the plan can actually inject anything.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.crashes.iter().any(Option::is_some)
            || self.slow.iter().any(Option::is_some)
    }

    /// Scheduled crashes, in insertion order.
    pub fn crashes(&self) -> impl Iterator<Item = CrashPoint> + '_ {
        self.crashes.iter().flatten().copied()
    }

    /// Index of the crash scheduled for exactly `(rank, tree, layer)`, if any.
    pub fn crash_index(&self, rank: usize, tree: usize, layer: usize) -> Option<usize> {
        self.crashes.iter().position(|c| {
            c.is_some_and(|c| {
                c.rank as usize == rank && c.tree as usize == tree && c.layer as usize == layer
            })
        })
    }

    /// Serving-plane crash poll: whether a crash is scheduled for `rank` at
    /// frame ordinal `handled` (the number of serve frames the replica has
    /// handled so far, cumulative across recoveries so each crash point
    /// fires exactly once). The serve plane reads `crash=R@K` as "crash
    /// replica R before handling its K-th frame"; the layer field is
    /// ignored there — serving has no tree/layer boundaries.
    pub fn serve_crash_at(&self, rank: usize, handled: usize) -> bool {
        self.crashes
            .iter()
            .flatten()
            .any(|c| c.rank as usize == rank && c.tree as usize == handled)
    }

    /// Straggler multiplier for `rank` (1.0 when not slowed).
    pub fn slow_factor(&self, rank: usize) -> f64 {
        self.slow
            .iter()
            .flatten()
            .find(|(r, _)| *r as usize == rank)
            .map_or(1.0, |(_, f)| f64::from(*f))
    }

    fn unit(&self, kind: u64, from: usize, to: usize, tag: u64, seq: u64, attempt: u32) -> f64 {
        let mut h = splitmix(self.seed ^ kind.wrapping_mul(0xa24b_aed4_963e_e407));
        h = splitmix(h ^ (from as u64).wrapping_mul(0x9fb2_1c65_1e98_df25));
        h = splitmix(h ^ (to as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        h = splitmix(h ^ tag);
        h = splitmix(h ^ seq);
        h = splitmix(h ^ u64::from(attempt));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether attempt `attempt` of this message is dropped.
    pub fn should_drop(&self, from: usize, to: usize, tag: u64, seq: u64, attempt: u32) -> bool {
        self.drop_p > 0.0
            && self.targets_tag(tag)
            && self.unit(KIND_DROP, from, to, tag, seq, attempt) < self.drop_p
    }

    /// Whether the delivered message is duplicated.
    pub fn should_dup(&self, from: usize, to: usize, tag: u64, seq: u64, attempt: u32) -> bool {
        self.dup_p > 0.0
            && self.targets_tag(tag)
            && self.unit(KIND_DUP, from, to, tag, seq, attempt) < self.dup_p
    }

    /// Modelled delay seconds charged to the delivered message (0.0 when no
    /// delay fires).
    pub fn delay_for(&self, from: usize, to: usize, tag: u64, seq: u64, attempt: u32) -> f64 {
        if self.delay_p > 0.0
            && self.targets_tag(tag)
            && self.unit(KIND_DELAY, from, to, tag, seq, attempt) < self.delay_p
        {
            self.delay_s
        } else {
            0.0
        }
    }

    /// Parses a `seed:spec` string, e.g.
    /// `42:drop=0.05,dup=0.02,delay=0.1@0.001,crash=1@3.1,slow=2@4.0,tag=serve_route`.
    ///
    /// Grammar: the part before the first `:` is the u64 seed; the rest is a
    /// comma-separated list of `drop=P`, `dup=P`, `delay=P@SECONDS`,
    /// `crash=RANK@TREE[.LAYER]` (layer defaults to 1 — mid-tree; the serve
    /// plane reads TREE as a frame ordinal, see [`FaultPlan::serve_crash_at`]),
    /// `slow=RANK@FACTOR`, `attempts=N`, and `tag=<name|id>` (repeatable)
    /// which scopes drop/dup/delay to the named protocol tags. Tag names
    /// resolve through [`crate::comm::protocol::by_name`] — an unknown name
    /// is a parse error; a raw id is accepted as decimal or `0x`-hex. An
    /// empty spec after the seed is allowed (a plan that injects nothing).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (seed_str, spec) = text
            .split_once(':')
            .ok_or_else(|| format!("fault spec '{text}' must be 'seed:spec'"))?;
        let seed: u64 =
            seed_str.trim().parse().map_err(|e| format!("bad fault seed '{seed_str}': {e}"))?;
        let mut plan = FaultPlan::new(seed);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault item '{item}' must be 'key=value'"))?;
            let parse_f64 = |v: &str, what: &str| -> Result<f64, String> {
                v.parse().map_err(|e| format!("bad {what} '{v}': {e}"))
            };
            match key {
                "drop" => plan.drop_p = parse_f64(value, "drop probability")?,
                "dup" => plan.dup_p = parse_f64(value, "dup probability")?,
                "delay" => {
                    let (p, s) = value
                        .split_once('@')
                        .ok_or_else(|| format!("delay '{value}' must be 'P@SECONDS'"))?;
                    plan.delay_p = parse_f64(p, "delay probability")?;
                    plan.delay_s = parse_f64(s, "delay seconds")?;
                }
                "crash" => {
                    let (rank, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("crash '{value}' must be 'RANK@TREE[.LAYER]'"))?;
                    let rank: usize =
                        rank.parse().map_err(|e| format!("bad crash rank '{rank}': {e}"))?;
                    let (tree, layer) = match at.split_once('.') {
                        Some((t, l)) => (
                            t.parse().map_err(|e| format!("bad crash tree '{t}': {e}"))?,
                            l.parse().map_err(|e| format!("bad crash layer '{l}': {e}"))?,
                        ),
                        None => (
                            at.parse().map_err(|e| format!("bad crash tree '{at}': {e}"))?,
                            1usize,
                        ),
                    };
                    plan = plan.with_crash(rank, tree, layer);
                }
                "slow" => {
                    let (rank, factor) = value
                        .split_once('@')
                        .ok_or_else(|| format!("slow '{value}' must be 'RANK@FACTOR'"))?;
                    let rank: usize =
                        rank.parse().map_err(|e| format!("bad slow rank '{rank}': {e}"))?;
                    plan = plan.with_slow(rank, parse_f64(factor, "slow factor")?);
                }
                "attempts" => {
                    plan.max_attempts = value
                        .parse()
                        .map_err(|e| format!("bad attempts '{value}': {e}"))?;
                    plan.max_attempts = plan.max_attempts.max(1);
                }
                "tag" => {
                    let tag = match crate::comm::protocol::by_name(value) {
                        Some(tag) => tag,
                        None => {
                            let parsed = match value.strip_prefix("0x") {
                                Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
                                None => value.parse::<u64>().ok(),
                            };
                            parsed.ok_or_else(|| {
                                format!(
                                    "unknown tag '{value}' (known names: {})",
                                    crate::comm::protocol::known_names().join(", ")
                                )
                            })?
                        }
                    };
                    if plan.tag_scope.iter().flatten().count() == FAULT_SCOPE_CAP
                        && !plan.tag_scope.iter().flatten().any(|&t| t == tag)
                    {
                        return Err(format!("at most {FAULT_SCOPE_CAP} tag= items per plan"));
                    }
                    plan = plan.with_tag(tag);
                }
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        for p in [plan.drop_p, plan.dup_p, plan.delay_p] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault probability {p} outside [0, 1]"));
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(7).with_drop(0.2).with_dup(0.1);
        let mut drops = 0;
        for seq in 0..10_000u64 {
            if plan.should_drop(0, 1, 5, seq, 0) {
                drops += 1;
            }
            // Same inputs, same answer.
            assert_eq!(
                plan.should_drop(0, 1, 5, seq, 0),
                plan.should_drop(0, 1, 5, seq, 0)
            );
        }
        let rate = f64::from(drops) / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "drop rate {rate} far from 0.2");
        // Different kinds draw independently: dup decisions differ from drop.
        let disagree = (0..1_000u64)
            .filter(|&seq| {
                plan.should_drop(0, 1, 5, seq, 0) != plan.should_dup(0, 1, 5, seq, 0)
            })
            .count();
        assert!(disagree > 0);
    }

    #[test]
    fn retry_attempts_redraw() {
        let plan = FaultPlan::new(3).with_drop(0.5);
        // Some message dropped at attempt 0 must eventually get through
        // within the default budget.
        for seq in 0..100u64 {
            let delivered = (0..plan.max_attempts).any(|a| !plan.should_drop(1, 2, 9, seq, a));
            assert!(delivered, "seq {seq} never delivered");
        }
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("42:drop=0.05,dup=0.02,delay=0.1@0.001,crash=1@3.2,slow=2@4.5,attempts=9")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_p, 0.05);
        assert_eq!(plan.dup_p, 0.02);
        assert_eq!(plan.delay_p, 0.1);
        assert_eq!(plan.delay_s, 0.001);
        assert_eq!(plan.max_attempts, 9);
        assert_eq!(plan.crash_index(1, 3, 2), Some(0));
        assert_eq!(plan.crash_index(1, 3, 1), None);
        assert_eq!(plan.slow_factor(2), 4.5);
        assert_eq!(plan.slow_factor(0), 1.0);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_crash_layer_defaults_to_one() {
        let plan = FaultPlan::parse("1:crash=0@5").unwrap();
        assert_eq!(plan.crash_index(0, 5, 1), Some(0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("no-colon").is_err());
        assert!(FaultPlan::parse("x:drop=0.1").is_err());
        assert!(FaultPlan::parse("1:drop=2.0").is_err());
        assert!(FaultPlan::parse("1:bogus=1").is_err());
        assert!(FaultPlan::parse("1:delay=0.1").is_err());
        assert!(FaultPlan::parse("1:crash=0").is_err());
    }

    #[test]
    fn tag_scope_confines_drop_dup_delay() {
        let scoped = FaultPlan::new(7).with_drop(1.0).with_dup(1.0).with_tag(5).with_tag(9);
        let open = FaultPlan::new(7).with_drop(1.0).with_dup(1.0);
        assert!(scoped.targets_tag(5) && scoped.targets_tag(9));
        assert!(!scoped.targets_tag(6));
        assert!(open.targets_tag(6), "empty scope means every tag");
        // Scoped tags draw exactly the decisions the open plan draws.
        for seq in 0..100u64 {
            assert!(scoped.should_drop(0, 1, 5, seq, 0));
            assert!(!scoped.should_drop(0, 1, 6, seq, 0), "off-scope tag must be untouched");
            assert!(!scoped.should_dup(0, 1, 6, seq, 0));
            assert_eq!(
                scoped.should_drop(0, 1, 9, seq, 0),
                open.should_drop(0, 1, 9, seq, 0),
                "scoping must not change the in-scope dice"
            );
        }
        let delayed = FaultPlan::new(3).with_delay(1.0, 0.5).with_tag(2);
        assert_eq!(delayed.delay_for(0, 1, 2, 0, 0), 0.5);
        assert_eq!(delayed.delay_for(0, 1, 3, 0, 0), 0.0);
        // Re-adding an in-scope tag is a no-op, not a second slot.
        assert_eq!(scoped.tag_scope().count(), 2);
        assert_eq!(scoped.with_tag(5).tag_scope().count(), 2);
    }

    #[test]
    fn parse_tag_scope_names_and_ids() {
        let plan = FaultPlan::parse("1:drop=0.5,tag=serve_route,tag=serve_reply").unwrap();
        let scoped: Vec<u64> = plan.tag_scope().collect();
        assert_eq!(
            scoped,
            vec![
                crate::comm::protocol::SERVE_ROUTE_TAG,
                crate::comm::protocol::SERVE_REPLY_TAG
            ]
        );
        // Raw ids in decimal and hex.
        let by_id = FaultPlan::parse("1:tag=42,tag=0x7376_7271").unwrap();
        let scoped: Vec<u64> = by_id.tag_scope().collect();
        assert_eq!(scoped, vec![42, crate::comm::protocol::SERVE_REQUEST_TAG]);
        // Every registered name parses.
        for name in crate::comm::protocol::known_names() {
            let spec = format!("1:tag={name}");
            assert!(FaultPlan::parse(&spec).is_ok(), "registered name {name} must parse");
        }
    }

    #[test]
    fn parse_rejects_unknown_tag_names() {
        let err = FaultPlan::parse("1:tag=serve_requets").unwrap_err();
        assert!(err.contains("unknown tag"), "{err}");
        assert!(err.contains("serve_request"), "error must list known names: {err}");
        assert!(FaultPlan::parse("1:tag=").is_err());
        assert!(FaultPlan::parse("1:tag=0xzz").is_err());
        // Scope table overflow is a parse error, not a panic.
        let overflow = format!(
            "1:{}",
            (0..=FAULT_SCOPE_CAP).map(|i| format!("tag={i}")).collect::<Vec<_>>().join(",")
        );
        assert!(FaultPlan::parse(&overflow).unwrap_err().contains("at most"));
    }

    #[test]
    fn serve_crash_at_matches_frame_ordinal() {
        let plan = FaultPlan::parse("1:crash=2@7").unwrap();
        assert!(plan.serve_crash_at(2, 7));
        assert!(!plan.serve_crash_at(2, 6));
        assert!(!plan.serve_crash_at(1, 7));
        // Layer is ignored on the serve plane.
        let deep = FaultPlan::parse("1:crash=0@3.2").unwrap();
        assert!(deep.serve_crash_at(0, 3));
    }

    #[test]
    fn empty_spec_is_inactive() {
        let plan = FaultPlan::parse("5:").unwrap();
        assert!(!plan.is_active());
        assert!(!plan.should_drop(0, 1, 2, 3, 0));
        assert_eq!(plan.delay_for(0, 1, 2, 3, 0), 0.0);
    }
}
