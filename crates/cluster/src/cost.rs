//! Network transfer-time model.
//!
//! All workers share one machine, so real channel latency says nothing about
//! a cluster. Instead every message is charged
//! `latency + bytes / bandwidth` seconds against the sending worker's and
//! the receiving worker's communication clocks, approximating a full-duplex
//! NIC. Byte counts themselves are exact (real serialized payload lengths).

use serde::{Deserialize, Serialize};

/// Latency/bandwidth model for one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkCostModel {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl NetworkCostModel {
    /// A model with the given link speed in gigabits per second.
    pub fn gbps(gbit: f64) -> Self {
        NetworkCostModel { latency_s: 1e-4, bandwidth_bytes_per_s: gbit * 1e9 / 8.0 }
    }

    /// The paper's §5.1 laboratory cluster: 1 Gbps Ethernet.
    pub fn lab_cluster() -> Self {
        Self::gbps(1.0)
    }

    /// The paper's §6 production cluster: 10 Gbps Ethernet.
    pub fn production_cluster() -> Self {
        Self::gbps(10.0)
    }

    /// An effectively free network (isolates computation in experiments).
    pub fn infinite() -> Self {
        NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: f64::INFINITY }
    }

    /// Modelled seconds to move one `bytes`-sized message over the link.
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

impl Default for NetworkCostModel {
    fn default() -> Self {
        Self::lab_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_converts_to_bytes_per_second() {
        let m = NetworkCostModel::gbps(1.0);
        assert_eq!(m.bandwidth_bytes_per_s, 125_000_000.0);
        let m = NetworkCostModel::gbps(10.0);
        assert_eq!(m.bandwidth_bytes_per_s, 1_250_000_000.0);
    }

    #[test]
    fn message_time_adds_latency_and_transfer() {
        let m = NetworkCostModel { latency_s: 0.001, bandwidth_bytes_per_s: 1000.0 };
        assert!((m.message_time(500) - 0.501).abs() < 1e-12);
        assert!((m.message_time(0) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn infinite_network_is_free_transfer() {
        let m = NetworkCostModel::infinite();
        assert_eq!(m.message_time(1 << 30), 0.0);
    }

    #[test]
    fn one_gbps_moves_906mb_in_7ish_seconds() {
        // Sanity anchor for the paper's §3.1.4 example: a 906 MB histogram
        // takes ~7.6 s on 1 Gbps.
        let m = NetworkCostModel::lab_cluster();
        let t = m.message_time(906 * 1024 * 1024);
        assert!((7.0..8.5).contains(&t), "t = {t}");
    }
}
