//! Lowering a trained ensemble into a flattened, cache-friendly layout.
//!
//! The pointer-chasing `Tree` representation is ideal for growth but
//! hostile to inference: every step dereferences an `Option<TreeNode>`,
//! matches an enum, and branches on leaf-ness. Compilation rewrites each
//! tree into a breadth-first contiguous array of 16-byte [`FlatNode`]s:
//!
//! * Children occupy adjacent slots (`right = left + 1`), so the taken
//!   child is `left + (1 - go_left)` — pure arithmetic, no branch.
//! * Leaves are *self-looping*: `feature = 0`, `threshold = +∞`,
//!   `default_left = 1`, `left = own slot`. Once a path reaches a leaf,
//!   further steps stay put, so every tree can be walked for a fixed
//!   `depth − 1` iterations with no `is_leaf` test — the property the
//!   branchless/interleaved executors in [`crate::exec`] rely on.
//! * Leaf output vectors live in one pooled `leaf_values` array; the
//!   node's `payload` field is the pool offset.

use gbdt_core::model::GbdtModel;
use gbdt_core::tree::{children, NodeKind, Tree};

/// One flattened tree node: 16 bytes, so a 1024-node tree block is
/// 16 KiB — half a typical L1d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Split feature in bits 0..31, default-left direction in bit 31.
    pub feat_dl: u32,
    /// Go left when `value <= threshold` (leaves store `+∞`).
    pub threshold: f32,
    /// Tree-local slot of the left child; right child is `left + 1`.
    /// Leaves store their own slot (self-loop).
    pub left: u32,
    /// Offset into the pooled leaf-value array (leaves only; 0 for
    /// internal nodes).
    pub payload: u32,
}

const DEFAULT_LEFT_BIT: u32 = 1 << 31;

impl FlatNode {
    /// Split feature id.
    #[inline]
    pub fn feature(self) -> u32 {
        self.feat_dl & !DEFAULT_LEFT_BIT
    }

    /// 1 when missing values route left.
    #[inline]
    pub fn default_left(self) -> u32 {
        self.feat_dl >> 31
    }
}

/// An ensemble compiled for inference: all trees' flat nodes in one
/// contiguous array, leaf values pooled, per-tree offsets and fixed step
/// counts precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEnsemble {
    /// Monotonically increasing publish version (see
    /// [`crate::server::ModelSlot`]); 0 for a directly compiled model.
    pub version: u64,
    /// Row width every scoring call must supply.
    pub n_features: usize,
    /// Scores per row (C).
    pub n_outputs: usize,
    /// Constant scores added before any tree (bit-copied from the model).
    pub init_scores: Vec<f64>,
    /// All trees' nodes, tree-major, breadth-first within each tree.
    pub nodes: Vec<FlatNode>,
    /// `nodes` offset of each tree, plus a trailing total (len = T + 1).
    pub tree_off: Vec<u32>,
    /// Fixed traversal iterations per tree (`depth − 1`).
    pub tree_steps: Vec<u32>,
    /// Pooled leaf output vectors, `n_outputs` values each.
    pub leaf_values: Vec<f64>,
}

impl CompiledEnsemble {
    /// Number of trees.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.tree_steps.len()
    }

    /// The deepest tree's fixed step count.
    pub fn max_steps(&self) -> u32 {
        self.tree_steps.iter().copied().max().unwrap_or(0)
    }

    /// Approximate resident size of the hot arrays in bytes.
    pub fn hot_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<FlatNode>() + self.leaf_values.len() * 8
    }
}

/// Compiles one tree, appending into the ensemble-wide pools.
fn compile_tree(
    tree: &Tree,
    t: usize,
    nodes: &mut Vec<FlatNode>,
    leaf_values: &mut Vec<f64>,
    n_features: usize,
) -> Result<(), String> {
    let base = nodes.len();
    // BFS order doubles as the slot assignment: `order[slot]` is the
    // complete-tree id placed at that slot, and pushing both children
    // together makes them adjacent.
    let mut order: Vec<u32> = vec![0];
    let mut slot = 0usize;
    while slot < order.len() {
        let id = order[slot];
        let node = tree
            .node(id)
            .ok_or_else(|| format!("tree {t}: node {id} reachable but not materialized"))?;
        match &node.kind {
            NodeKind::Internal { feature, threshold, default_left, .. } => {
                if *feature as usize >= n_features {
                    return Err(format!(
                        "tree {t}: split feature {feature} out of range (n_features {n_features})"
                    ));
                }
                if *feature & DEFAULT_LEFT_BIT != 0 {
                    return Err(format!("tree {t}: feature id {feature} overflows 31 bits"));
                }
                let (l, r) = children(id);
                let left_slot = order.len() as u32;
                order.push(l);
                order.push(r);
                nodes.push(FlatNode {
                    feat_dl: *feature | if *default_left { DEFAULT_LEFT_BIT } else { 0 },
                    threshold: *threshold,
                    left: left_slot,
                    payload: 0,
                });
            }
            NodeKind::Leaf { values } => {
                let payload = leaf_values.len();
                if payload > u32::MAX as usize {
                    return Err(format!("tree {t}: leaf pool exceeds u32 offsets"));
                }
                leaf_values.extend_from_slice(values);
                nodes.push(FlatNode {
                    feat_dl: DEFAULT_LEFT_BIT, // feature 0, missing → left
                    threshold: f32::INFINITY,
                    left: slot as u32, // self-loop
                    payload: payload as u32,
                });
            }
        }
        slot += 1;
    }
    debug_assert_eq!(nodes.len() - base, order.len());
    Ok(())
}

/// Compiles a trained model into the flattened inference layout.
///
/// Fails on structurally broken trees (an internal node whose child was
/// never materialized, split features outside the model's declared
/// width) rather than compiling something that would mis-route rows.
pub fn compile(model: &GbdtModel, version: u64) -> Result<CompiledEnsemble, String> {
    // Leaves probe `row[0]` in the branchless step, so a row must carry at
    // least one cell even for a zero-feature (constant) model.
    let n_features = model.n_features.max(1);
    let n_outputs = model.n_outputs();
    if model.init_scores.len() != n_outputs {
        return Err(format!(
            "init_scores len {} != n_outputs {n_outputs}",
            model.init_scores.len()
        ));
    }
    let mut nodes = Vec::new();
    let mut leaf_values = Vec::new();
    let mut tree_off = Vec::with_capacity(model.trees.len() + 1);
    let mut tree_steps = Vec::with_capacity(model.trees.len());
    for (t, tree) in model.trees.iter().enumerate() {
        if tree.n_outputs() != n_outputs {
            return Err(format!("tree {t}: arity {} != model C {n_outputs}", tree.n_outputs()));
        }
        tree_off.push(nodes.len() as u32);
        compile_tree(tree, t, &mut nodes, &mut leaf_values, n_features)?;
        tree_steps.push(tree.depth().saturating_sub(1) as u32);
    }
    if nodes.len() > u32::MAX as usize {
        return Err("ensemble exceeds u32 node offsets".into());
    }
    tree_off.push(nodes.len() as u32);
    Ok(CompiledEnsemble {
        version,
        n_features,
        n_outputs,
        init_scores: model.init_scores.clone(),
        nodes,
        tree_off,
        tree_steps,
        leaf_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::Objective;

    fn two_layer_model() -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 3);
        let mut t = Tree::new(3, 1);
        t.set_internal(0, 2, 0, 0.5, true);
        t.set_internal(1, 0, 0, -1.0, false);
        t.set_leaf(2, vec![3.0]);
        t.set_leaf(3, vec![1.0]);
        t.set_leaf(4, vec![2.0]);
        m.trees.push(t);
        m
    }

    #[test]
    fn bfs_layout_and_self_looping_leaves() {
        let c = compile(&two_layer_model(), 7).unwrap();
        assert_eq!(c.version, 7);
        assert_eq!(c.n_trees(), 1);
        assert_eq!(c.tree_off, vec![0, 5]);
        assert_eq!(c.tree_steps, vec![2]);
        // Slot 0 = root (internal on feature 2, default left).
        assert_eq!(c.nodes[0].feature(), 2);
        assert_eq!(c.nodes[0].default_left(), 1);
        assert_eq!(c.nodes[0].left, 1);
        // Slot 1 = left child (internal, default right), children at 3,4.
        assert_eq!(c.nodes[1].feature(), 0);
        assert_eq!(c.nodes[1].default_left(), 0);
        assert_eq!(c.nodes[1].left, 3);
        // Slot 2 = right child: a self-looping leaf.
        assert_eq!(c.nodes[2].left, 2);
        assert_eq!(c.nodes[2].threshold, f32::INFINITY);
        assert_eq!(c.nodes[2].default_left(), 1);
        assert_eq!(c.leaf_values[c.nodes[2].payload as usize], 3.0);
        // Leaves at slots 3 and 4 hold the deep values.
        assert_eq!(c.leaf_values[c.nodes[3].payload as usize], 1.0);
        assert_eq!(c.leaf_values[c.nodes[4].payload as usize], 2.0);
    }

    #[test]
    fn rejects_missing_children_and_bad_features() {
        let mut broken = GbdtModel::new(Objective::SquaredError, 0.1, 3);
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 0.5, true);
        t.set_leaf(1, vec![1.0]);
        // Node 2 never materialized.
        broken.trees.push(t);
        assert!(compile(&broken, 0).unwrap_err().contains("not materialized"));

        let mut wide = GbdtModel::new(Objective::SquaredError, 0.1, 1);
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 5, 0, 0.5, true); // feature 5 > n_features 1
        t.set_leaf(1, vec![1.0]);
        t.set_leaf(2, vec![2.0]);
        wide.trees.push(t);
        assert!(compile(&wide, 0).unwrap_err().contains("out of range"));
    }

    #[test]
    fn constant_model_compiles() {
        let m = GbdtModel::new(Objective::Logistic, 0.1, 0);
        let c = compile(&m, 0).unwrap();
        assert_eq!(c.n_features, 1); // padded so row[0] is readable
        assert_eq!(c.n_trees(), 0);
        assert!(c.hot_bytes() == 0);
        assert_eq!(c.max_steps(), 0);
    }
}
