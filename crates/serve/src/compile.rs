//! Lowering a trained ensemble into a flattened, cache-friendly layout.
//!
//! The pointer-chasing `Tree` representation is ideal for growth but
//! hostile to inference: every step dereferences an `Option<TreeNode>`,
//! matches an enum, and branches on leaf-ness. Compilation rewrites each
//! tree into a breadth-first contiguous array of 16-byte [`FlatNode`]s:
//!
//! * Children occupy adjacent slots (`right = left + 1`), so the taken
//!   child is `left + (1 - go_left)` — pure arithmetic, no branch.
//! * Leaves are *self-looping*: `feature = 0`, `threshold = +∞`,
//!   `default_left = 1`, `left = own slot`. Once a path reaches a leaf,
//!   further steps stay put, so every tree can be walked for a fixed
//!   `depth − 1` iterations with no `is_leaf` test — the property the
//!   branchless/interleaved executors in [`crate::exec`] rely on.
//! * Leaf output vectors live in one pooled `leaf_values` array; the
//!   node's `payload` field is the pool offset.
//!
//! Alongside the 16-byte layout, compilation also builds an 8-byte
//! [`QuantNode`] layout ([`QuantLayout`]) that indirects thresholds
//! through per-feature tables of the *exact* original `f32` cut values.
//! Traversal compares `row[feat] <= cuts[cut_base[feat] + slot]` — the
//! identical `f32` comparison the flat layout performs — so predictions
//! are bit-identical while node bytes halve, roughly doubling the
//! ensemble size that stays L2-resident (see DESIGN.md item 14).

use gbdt_core::model::GbdtModel;
use gbdt_core::tree::{children, NodeKind, Tree};
use std::collections::HashMap;

/// One flattened tree node: 16 bytes, so a 1024-node tree block is
/// 16 KiB — half a typical L1d.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Split feature in bits 0..31, default-left direction in bit 31.
    pub feat_dl: u32,
    /// Go left when `value <= threshold` (leaves store `+∞`).
    pub threshold: f32,
    /// Tree-local slot of the left child; right child is `left + 1`.
    /// Leaves store their own slot (self-loop).
    pub left: u32,
    /// Offset into the pooled leaf-value array (leaves only; 0 for
    /// internal nodes).
    pub payload: u32,
}

const DEFAULT_LEFT_BIT: u32 = 1 << 31;

impl FlatNode {
    /// Split feature id.
    #[inline]
    pub fn feature(self) -> u32 {
        self.feat_dl & !DEFAULT_LEFT_BIT
    }

    /// 1 when missing values route left.
    #[inline]
    pub fn default_left(self) -> u32 {
        self.feat_dl >> 31
    }
}

/// One quantized tree node: 8 bytes — half a [`FlatNode`] — so twice the
/// ensemble fits in the same cache footprint.
///
/// The `f32` threshold is replaced by a `u16` slot into the owning
/// feature's cut table ([`QuantLayout::cuts`]), which stores the *exact*
/// original `f32` bits, so the traversal comparison is unchanged.
/// Encoding:
///
/// * `feat` — split feature (leaves store 0).
/// * `slot` — threshold slot within the feature's table. Slot 0 of every
///   feature's table is a reserved `+∞` sentinel and real cuts start at
///   slot 1, so `slot == 0` uniquely identifies a leaf (whose `+∞`
///   threshold also makes it self-loop, exactly like the flat layout).
/// * `meta` — bit 31 is `default_left` (1 for leaves: missing routes
///   left into the self-loop); bits 0..31 hold the tree-local left-child
///   slot for internal nodes, or the leaf-value pool offset for leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantNode {
    /// Split feature id (0 for leaves).
    pub feat: u16,
    /// Threshold slot in the feature's cut table; 0 ⇔ leaf.
    pub slot: u16,
    /// Bit 31 = default-left; bits 0..31 = left-child slot or payload.
    pub meta: u32,
}

/// `meta` bit flagging that missing values route left.
pub const QUANT_DEFAULT_LEFT_BIT: u32 = 1 << 31;
/// Mask extracting the left-child slot / leaf payload from `meta`.
pub const QUANT_LINK_MASK: u32 = !QUANT_DEFAULT_LEFT_BIT;

// The whole point of the layout: 8 bytes per node, enforced at compile
// time so a refactor can never silently fatten it.
const _: () = assert!(std::mem::size_of::<QuantNode>() == 8);

/// The quantized companion layout: 8-byte nodes plus per-feature tables
/// of the exact original cut values.
///
/// Built alongside the flat layout whenever the model fits the quantized
/// index widths (≤ 65536 features, ≤ 65535 distinct cuts per feature,
/// links within 31 bits); otherwise [`CompiledEnsemble::quant`] is
/// `None` and quant executors fall back to the flat nodes — harmless,
/// because both layouts score bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayout {
    /// All trees' nodes, tree-major, same slot order as the flat nodes.
    pub nodes: Vec<QuantNode>,
    /// `cuts` offset of each feature's table, plus a trailing total
    /// (len = `n_features + 1`).
    pub cut_base: Vec<u32>,
    /// Concatenated per-feature cut tables. Entry `cut_base[f]` is the
    /// `+∞` sentinel; entries `cut_base[f] + 1 ..` are the feature's
    /// distinct thresholds, each the exact `f32` the model trained.
    pub cuts: Vec<f32>,
}

impl QuantLayout {
    /// Resident size of the quantized hot arrays in bytes (nodes plus
    /// cut tables; leaf values are shared with the flat layout).
    pub fn hot_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<QuantNode>()
            + self.cuts.len() * 4
            + self.cut_base.len() * 4
    }
}

/// An ensemble compiled for inference: all trees' flat nodes in one
/// contiguous array, leaf values pooled, per-tree offsets and fixed step
/// counts precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEnsemble {
    /// Monotonically increasing publish version (see
    /// [`crate::server::ModelSlot`]); 0 for a directly compiled model.
    pub version: u64,
    /// Row width every scoring call must supply.
    pub n_features: usize,
    /// Scores per row (C).
    pub n_outputs: usize,
    /// Constant scores added before any tree (bit-copied from the model).
    pub init_scores: Vec<f64>,
    /// All trees' nodes, tree-major, breadth-first within each tree.
    pub nodes: Vec<FlatNode>,
    /// `nodes` offset of each tree, plus a trailing total (len = T + 1).
    pub tree_off: Vec<u32>,
    /// Fixed traversal iterations per tree (`depth − 1`).
    pub tree_steps: Vec<u32>,
    /// Pooled leaf output vectors, `n_outputs` values each.
    pub leaf_values: Vec<f64>,
    /// The 8-byte quantized companion layout, when the model fits its
    /// index widths (see [`QuantLayout`]).
    pub quant: Option<QuantLayout>,
}

impl CompiledEnsemble {
    /// Number of trees.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.tree_steps.len()
    }

    /// The deepest tree's fixed step count.
    pub fn max_steps(&self) -> u32 {
        self.tree_steps.iter().copied().max().unwrap_or(0)
    }

    /// Approximate resident size of the hot arrays in bytes.
    pub fn hot_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<FlatNode>() + self.leaf_values.len() * 8
    }

    /// Approximate resident size when scoring through the quantized
    /// layout (falls back to the flat footprint when quant is absent).
    pub fn quant_hot_bytes(&self) -> usize {
        match &self.quant {
            Some(q) => q.hot_bytes() + self.leaf_values.len() * 8,
            None => self.hot_bytes(),
        }
    }
}

/// Builds the quantized companion layout from the freshly compiled flat
/// nodes, or `None` when the model exceeds the quantized index widths.
///
/// Every internal node's threshold is interned into its feature's cut
/// table by exact bit pattern (first-seen order, so the table is a pure
/// function of the node array — deterministic). Slot 0 of every table is
/// reserved for the `+∞` leaf sentinel; that keeps `slot == 0` an
/// unambiguous leaf test, since interned cuts start at slot 1.
fn build_quant(nodes: &[FlatNode], tree_off: &[u32], n_features: usize) -> Option<QuantLayout> {
    if n_features > u16::MAX as usize + 1 {
        return None;
    }
    // A leaf is exactly a self-looping node. Tree-local slots make the
    // test unambiguous: an internal node's left child is always a later
    // slot, so `left == own slot` can never hold for one.
    let is_leaf = |global: usize| {
        let t = tree_off.partition_point(|&off| off as usize <= global) - 1;
        nodes[global].left as usize == global - tree_off[t] as usize
    };
    // Pass 1: intern each feature's distinct thresholds. `slot_of` maps
    // (feature, threshold bits) → 1-based slot; only keyed lookups, never
    // iterated, so hash order cannot reach the layout.
    let mut per_feat_cuts: Vec<Vec<f32>> = vec![Vec::new(); n_features];
    let mut slot_of: HashMap<(u16, u32), u16> = HashMap::new();
    for (g, n) in nodes.iter().enumerate() {
        if is_leaf(g) {
            continue; // leaves use the reserved slot-0 sentinel
        }
        let feat = n.feature() as u16;
        let key = (feat, n.threshold.to_bits());
        if let std::collections::hash_map::Entry::Vacant(e) = slot_of.entry(key) {
            let table = &mut per_feat_cuts[feat as usize];
            if table.len() >= u16::MAX as usize {
                return None; // > 65535 distinct cuts on one feature
            }
            table.push(n.threshold);
            e.insert(table.len() as u16);
        }
    }
    // Pass 2: concatenate the tables (sentinel-first) and translate nodes.
    let mut cut_base = Vec::with_capacity(n_features + 1);
    let mut cuts = Vec::new();
    for table in &per_feat_cuts {
        cut_base.push(cuts.len() as u32);
        cuts.push(f32::INFINITY);
        cuts.extend_from_slice(table);
    }
    cut_base.push(cuts.len() as u32);
    let mut qnodes = Vec::with_capacity(nodes.len());
    for (g, n) in nodes.iter().enumerate() {
        let (feat, slot, link) = if is_leaf(g) {
            (0u16, 0u16, n.payload)
        } else {
            let feat = n.feature() as u16;
            (feat, slot_of[&(feat, n.threshold.to_bits())], n.left)
        };
        if link & QUANT_DEFAULT_LEFT_BIT != 0 {
            return None; // child slot / payload overflows the 31-bit link
        }
        let dl = if n.default_left() == 1 { QUANT_DEFAULT_LEFT_BIT } else { 0 };
        qnodes.push(QuantNode { feat, slot, meta: dl | link });
    }
    Some(QuantLayout { nodes: qnodes, cut_base, cuts })
}

/// Compiles one tree, appending into the ensemble-wide pools.
fn compile_tree(
    tree: &Tree,
    t: usize,
    nodes: &mut Vec<FlatNode>,
    leaf_values: &mut Vec<f64>,
    n_features: usize,
) -> Result<(), String> {
    let base = nodes.len();
    // BFS order doubles as the slot assignment: `order[slot]` is the
    // complete-tree id placed at that slot, and pushing both children
    // together makes them adjacent.
    let mut order: Vec<u32> = vec![0];
    let mut slot = 0usize;
    while slot < order.len() {
        let id = order[slot];
        let node = tree
            .node(id)
            .ok_or_else(|| format!("tree {t}: node {id} reachable but not materialized"))?;
        match &node.kind {
            NodeKind::Internal { feature, threshold, default_left, .. } => {
                if *feature as usize >= n_features {
                    return Err(format!(
                        "tree {t}: split feature {feature} out of range (n_features {n_features})"
                    ));
                }
                if *feature & DEFAULT_LEFT_BIT != 0 {
                    return Err(format!("tree {t}: feature id {feature} overflows 31 bits"));
                }
                let (l, r) = children(id);
                let left_slot = order.len() as u32;
                order.push(l);
                order.push(r);
                nodes.push(FlatNode {
                    feat_dl: *feature | if *default_left { DEFAULT_LEFT_BIT } else { 0 },
                    threshold: *threshold,
                    left: left_slot,
                    payload: 0,
                });
            }
            NodeKind::Leaf { values } => {
                let payload = leaf_values.len();
                if payload > u32::MAX as usize {
                    return Err(format!("tree {t}: leaf pool exceeds u32 offsets"));
                }
                leaf_values.extend_from_slice(values);
                nodes.push(FlatNode {
                    feat_dl: DEFAULT_LEFT_BIT, // feature 0, missing → left
                    threshold: f32::INFINITY,
                    left: slot as u32, // self-loop
                    payload: payload as u32,
                });
            }
        }
        slot += 1;
    }
    debug_assert_eq!(nodes.len() - base, order.len());
    Ok(())
}

/// Compiles a trained model into the flattened inference layout.
///
/// Fails on structurally broken trees (an internal node whose child was
/// never materialized, split features outside the model's declared
/// width) rather than compiling something that would mis-route rows.
pub fn compile(model: &GbdtModel, version: u64) -> Result<CompiledEnsemble, String> {
    // Leaves probe `row[0]` in the branchless step, so a row must carry at
    // least one cell even for a zero-feature (constant) model.
    let n_features = model.n_features.max(1);
    let n_outputs = model.n_outputs();
    if model.init_scores.len() != n_outputs {
        return Err(format!(
            "init_scores len {} != n_outputs {n_outputs}",
            model.init_scores.len()
        ));
    }
    let mut nodes = Vec::new();
    let mut leaf_values = Vec::new();
    let mut tree_off = Vec::with_capacity(model.trees.len() + 1);
    let mut tree_steps = Vec::with_capacity(model.trees.len());
    for (t, tree) in model.trees.iter().enumerate() {
        if tree.n_outputs() != n_outputs {
            return Err(format!("tree {t}: arity {} != model C {n_outputs}", tree.n_outputs()));
        }
        tree_off.push(nodes.len() as u32);
        compile_tree(tree, t, &mut nodes, &mut leaf_values, n_features)?;
        tree_steps.push(tree.depth().saturating_sub(1) as u32);
    }
    if nodes.len() > u32::MAX as usize {
        return Err("ensemble exceeds u32 node offsets".into());
    }
    tree_off.push(nodes.len() as u32);
    let quant = build_quant(&nodes, &tree_off, n_features);
    Ok(CompiledEnsemble {
        version,
        n_features,
        n_outputs,
        init_scores: model.init_scores.clone(),
        nodes,
        tree_off,
        tree_steps,
        leaf_values,
        quant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::Objective;

    fn two_layer_model() -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 3);
        let mut t = Tree::new(3, 1);
        t.set_internal(0, 2, 0, 0.5, true);
        t.set_internal(1, 0, 0, -1.0, false);
        t.set_leaf(2, vec![3.0]);
        t.set_leaf(3, vec![1.0]);
        t.set_leaf(4, vec![2.0]);
        m.trees.push(t);
        m
    }

    #[test]
    fn bfs_layout_and_self_looping_leaves() {
        let c = compile(&two_layer_model(), 7).unwrap();
        assert_eq!(c.version, 7);
        assert_eq!(c.n_trees(), 1);
        assert_eq!(c.tree_off, vec![0, 5]);
        assert_eq!(c.tree_steps, vec![2]);
        // Slot 0 = root (internal on feature 2, default left).
        assert_eq!(c.nodes[0].feature(), 2);
        assert_eq!(c.nodes[0].default_left(), 1);
        assert_eq!(c.nodes[0].left, 1);
        // Slot 1 = left child (internal, default right), children at 3,4.
        assert_eq!(c.nodes[1].feature(), 0);
        assert_eq!(c.nodes[1].default_left(), 0);
        assert_eq!(c.nodes[1].left, 3);
        // Slot 2 = right child: a self-looping leaf.
        assert_eq!(c.nodes[2].left, 2);
        assert_eq!(c.nodes[2].threshold, f32::INFINITY);
        assert_eq!(c.nodes[2].default_left(), 1);
        assert_eq!(c.leaf_values[c.nodes[2].payload as usize], 3.0);
        // Leaves at slots 3 and 4 hold the deep values.
        assert_eq!(c.leaf_values[c.nodes[3].payload as usize], 1.0);
        assert_eq!(c.leaf_values[c.nodes[4].payload as usize], 2.0);
    }

    #[test]
    fn rejects_missing_children_and_bad_features() {
        let mut broken = GbdtModel::new(Objective::SquaredError, 0.1, 3);
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 0.5, true);
        t.set_leaf(1, vec![1.0]);
        // Node 2 never materialized.
        broken.trees.push(t);
        assert!(compile(&broken, 0).unwrap_err().contains("not materialized"));

        let mut wide = GbdtModel::new(Objective::SquaredError, 0.1, 1);
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 5, 0, 0.5, true); // feature 5 > n_features 1
        t.set_leaf(1, vec![1.0]);
        t.set_leaf(2, vec![2.0]);
        wide.trees.push(t);
        assert!(compile(&wide, 0).unwrap_err().contains("out of range"));
    }

    #[test]
    fn quant_layout_mirrors_flat_with_exact_cuts() {
        let c = compile(&two_layer_model(), 7).unwrap();
        let q = c.quant.as_ref().expect("small model quantizes");
        assert_eq!(q.nodes.len(), c.nodes.len());
        assert_eq!(std::mem::size_of::<QuantNode>(), 8);
        // Feature tables: 3 features, each sentinel + its distinct cuts.
        // Feature 0 has cut -1.0, feature 2 has cut 0.5, feature 1 none.
        assert_eq!(q.cut_base, vec![0, 2, 3, 5]);
        assert_eq!(q.cuts[0], f32::INFINITY);
        assert_eq!(q.cuts[1].to_bits(), (-1.0f32).to_bits());
        assert_eq!(q.cuts[2], f32::INFINITY);
        assert_eq!(q.cuts[3], f32::INFINITY);
        assert_eq!(q.cuts[4].to_bits(), 0.5f32.to_bits());
        // Every node's threshold round-trips exactly through its table,
        // and links/default-left match the flat encoding bit for bit.
        for (g, (f, qn)) in c.nodes.iter().zip(&q.nodes).enumerate() {
            let thr = q.cuts[(q.cut_base[qn.feat as usize] + qn.slot as u32) as usize];
            assert_eq!(thr.to_bits(), f.threshold.to_bits(), "node {g}");
            assert_eq!(qn.meta >> 31, f.default_left(), "node {g}");
            if qn.slot == 0 {
                assert_eq!(qn.meta & QUANT_LINK_MASK, f.payload, "leaf {g}");
                assert_eq!(f.left as usize, g, "slot-0 node {g} must be a self-loop leaf");
            } else {
                assert_eq!(qn.meta & QUANT_LINK_MASK, f.left, "internal {g}");
            }
        }
        // Half the node bytes, plus small cut tables.
        assert!(q.hot_bytes() < c.nodes.len() * std::mem::size_of::<FlatNode>());
        assert!(c.quant_hot_bytes() < c.hot_bytes());
    }

    #[test]
    fn quant_interning_dedups_shared_cuts_across_trees() {
        let mut m = two_layer_model();
        let dup = m.trees[0].clone();
        m.trees.push(dup); // identical cuts — tables must not grow
        let c = compile(&m, 0).unwrap();
        let q = c.quant.unwrap();
        assert_eq!(q.cut_base, vec![0, 2, 3, 5]);
        assert_eq!(q.nodes.len(), 10);
    }

    #[test]
    fn quant_overflows_fall_back_to_none() {
        // 70 000 stump trees, each with a distinct threshold on feature 0:
        // exceeds the 65 535 cuts-per-feature budget of the u16 slot.
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 1);
        for k in 0..70_000u32 {
            let mut t = Tree::new(2, 1);
            t.set_internal(0, 0, 0, 1e-3 * k as f32, true);
            t.set_leaf(1, vec![1.0]);
            t.set_leaf(2, vec![-1.0]);
            m.trees.push(t);
        }
        let c = compile(&m, 0).unwrap();
        assert!(c.quant.is_none(), "cut overflow must disable quant, not corrupt it");
        assert_eq!(c.quant_hot_bytes(), c.hot_bytes());
    }

    #[test]
    fn constant_model_compiles() {
        let m = GbdtModel::new(Objective::Logistic, 0.1, 0);
        let c = compile(&m, 0).unwrap();
        assert_eq!(c.n_features, 1); // padded so row[0] is readable
        assert_eq!(c.n_trees(), 0);
        assert!(c.hot_bytes() == 0);
        assert_eq!(c.max_steps(), 0);
    }
}
