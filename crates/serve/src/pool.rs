//! Deterministic parallel batch scoring inside one replica.
//!
//! [`Parallel`] wraps any [`ExecStrategy`] and splits a request batch
//! into fixed-size row chunks scored concurrently by scoped threads,
//! reusing the `gbdt-core::parallel` chunked map-reduce discipline
//! ([`par_map_slots`]): chunk boundaries are fixed multiples of
//! [`SCORE_CHUNK`] — *independent of the thread count* — and each chunk
//! writes a disjoint slice of the output buffer. Rows are scored
//! independently (no cross-row accumulation), so any chunking produces
//! bit-identical output to the serial walk; the fixed boundaries
//! additionally keep each chunk aligned with the blocked executor's
//! 64-row tiles.
//!
//! Hot-swap safety is inherited, not re-proven: the wrapper is
//! stateless and scores whatever `&CompiledEnsemble` snapshot the
//! caller passed, so a publish mid-batch can never mix versions — the
//! snapshot was taken once, before the fan-out (see
//! [`crate::server::score_request`]). Degraded-mode prefix scoring
//! parallelizes for free because the wrapper forwards `max_trees` to
//! every chunk.
//!
//! The reply path waits on every chunk: `std::thread::scope` joins all
//! spawned workers before [`ExecStrategy::predict_prefix_into`]
//! returns, so a request's completion time is its *last* chunk's
//! completion — the property the traffic harness's latency accounting
//! relies on (no chunk finishes "early" for the ledger).

use crate::compile::CompiledEnsemble;
use crate::exec::ExecStrategy;
use gbdt_core::parallel::par_map_slots;

/// Rows per parallel chunk. Matches the blocked executor's row tile so
/// a chunk is a whole number of tiles, and is small enough that a large
/// batch fans out evenly across any sane thread count.
pub const SCORE_CHUNK: usize = 64;

/// An [`ExecStrategy`] scoring row chunks on a scoped thread pool.
///
/// Construct via [`parallel`], which resolves the thread budget and
/// skips the wrapper entirely when it would be a no-op.
pub struct Parallel {
    inner: Box<dyn ExecStrategy + Send + Sync>,
    threads: usize,
}

/// Resolves a `score_threads` knob: `0` = one thread per available
/// core, anything else is taken literally.
pub fn resolve_score_threads(score_threads: usize) -> usize {
    if score_threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        score_threads
    }
}

/// Wraps `inner` for parallel chunk scoring with `score_threads`
/// workers (0 = auto). A resolved budget of 1 returns `inner` unwrapped
/// — single-threaded scoring stays the exact code path it always was.
pub fn parallel(
    inner: Box<dyn ExecStrategy + Send + Sync>,
    score_threads: usize,
) -> Box<dyn ExecStrategy + Send + Sync> {
    let threads = resolve_score_threads(score_threads);
    if threads <= 1 {
        inner
    } else {
        Box::new(Parallel { inner, threads })
    }
}

impl ExecStrategy for Parallel {
    fn label(&self) -> String {
        format!("{}+t{}", self.inner.label(), self.threads)
    }

    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    ) {
        assert_eq!(rows.len() % ens.n_features, 0, "ragged row buffer");
        let n_rows = rows.len() / ens.n_features;
        assert_eq!(out.len(), n_rows * ens.n_outputs, "output shape mismatch");
        // A batch within one chunk gains nothing from fan-out: take the
        // serial path directly (identical bits either way).
        if n_rows <= SCORE_CHUNK {
            self.inner.predict_prefix_into(ens, rows, max_trees, out);
            return;
        }
        // Fixed chunk boundaries; disjoint output slices; contiguous
        // chunk blocks per thread (par_map_slots). Joining the scope
        // before returning makes completion = last-chunk completion.
        let mut chunks: Vec<&mut [f64]> = out.chunks_mut(SCORE_CHUNK * ens.n_outputs).collect();
        par_map_slots(&mut chunks, self.threads, |i, o| {
            let start = i * SCORE_CHUNK;
            let end = (start + SCORE_CHUNK).min(n_rows);
            self.inner.predict_prefix_into(
                ens,
                &rows[start * ens.n_features..end * ens.n_features],
                max_trees,
                o,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::{Layout, Strategy};
    use gbdt_core::model::GbdtModel;
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn model(n_trees: usize, n_features: usize) -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, n_features);
        for k in 0..n_trees {
            let mut t = Tree::new(3, 1);
            t.set_internal(0, (k % n_features) as u32, 0, 0.25, k % 2 == 0);
            t.set_internal(1, ((k + 1) % n_features) as u32, 0, -0.5, true);
            t.set_leaf(3, vec![(k as f64 + 1.0) * 0.125]);
            t.set_leaf(4, vec![-0.0625]);
            t.set_leaf(2, vec![0.5 - k as f64 * 0.03125]);
            m.trees.push(t);
        }
        m
    }

    fn rows(seed: u64, n_rows: usize, n_features: usize) -> Vec<f32> {
        let mut state = seed;
        (0..n_rows * n_features)
            .map(|_| {
                if splitmix(&mut state).is_multiple_of(8) {
                    f32::NAN
                } else {
                    (splitmix(&mut state) % 200) as f32 / 100.0 - 1.0
                }
            })
            .collect()
    }

    #[test]
    fn parallel_is_bit_identical_at_every_thread_count() {
        let n_features = 5;
        let ens = compile(&model(30, n_features), 0).unwrap();
        // 3 full chunks + a ragged tail, so boundaries are exercised.
        let rows = rows(0xDECADE, 3 * SCORE_CHUNK + 17, n_features);
        for strategy in [Strategy::PerRow, Strategy::Blocked(0)] {
            for layout in [Layout::Flat, Layout::Quant] {
                let mut expect = vec![0.0f64; rows.len() / n_features];
                strategy.executor_for(layout).predict_into(&ens, &rows, &mut expect);
                for threads in [0usize, 1, 2, 3, 8, 32] {
                    let exec = parallel(strategy.executor_for(layout), threads);
                    let mut got = vec![0.0f64; expect.len()];
                    exec.predict_into(&ens, &rows, &mut got);
                    let same =
                        expect.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "{} threads={threads} diverged", exec.label());
                }
            }
        }
    }

    #[test]
    fn parallel_prefix_matches_serial_prefix() {
        let n_features = 4;
        let ens = compile(&model(17, n_features), 0).unwrap();
        let rows = rows(7, 2 * SCORE_CHUNK + 5, n_features);
        for k in [0usize, 1, 9, 17, 40] {
            let mut expect = vec![0.0f64; rows.len() / n_features];
            Strategy::PerRow.executor().predict_prefix_into(&ens, &rows, k, &mut expect);
            let exec = parallel(Strategy::PerRow.executor(), 4);
            let mut got = vec![0.0f64; expect.len()];
            exec.predict_prefix_into(&ens, &rows, k, &mut got);
            let same = expect.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "prefix k={k} diverged under parallel scoring");
        }
    }

    #[test]
    fn single_thread_budget_skips_the_wrapper() {
        let exec = parallel(Strategy::PerRow.executor(), 1);
        assert_eq!(exec.label(), "per-row", "threads=1 must not relabel the executor");
        let exec = parallel(Strategy::Blocked(0).executor(), 3);
        assert_eq!(exec.label(), "blocked+t3");
    }

    #[test]
    fn small_batches_take_the_direct_path() {
        // One chunk of rows: the wrapper must not spawn (and must still
        // be bit-identical); we can only observe the bits, so pin those.
        let n_features = 3;
        let ens = compile(&model(5, n_features), 0).unwrap();
        let rows = rows(42, SCORE_CHUNK, n_features);
        let mut expect = vec![0.0f64; SCORE_CHUNK];
        Strategy::PerRow.executor().predict_into(&ens, &rows, &mut expect);
        let mut got = vec![0.0f64; SCORE_CHUNK];
        parallel(Strategy::PerRow.executor(), 8).predict_into(&ens, &rows, &mut got);
        assert_eq!(
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
