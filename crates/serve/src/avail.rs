//! Availability measurement for replicated serving under chaos.
//!
//! [`run_avail`] stands up a full replicated-serving mesh — rank 0
//! routing ([`crate::router`]), ranks `1..=n_replicas` serving
//! ([`crate::replica`]), the rest driving open-loop load — optionally
//! under a seeded [`FaultPlan`], and ledgers every request's fate:
//! verified-full, verified-degraded, shed, or failed.
//!
//! **Verification is exact.** Every scored response names its generating
//! function via the `(version, trees_scored)` stamp, and the harness
//! precomputes the expected scores of every reachable stamp with the
//! tree-walk predictor (`trees_scored > 0` against a model truncated to
//! that prefix). A response that does not bit-match its own stamp is
//! counted `incorrect` — the chaos acceptance tests require that count
//! to be **zero**: chaos may cost availability, never correctness.
//!
//! [`FaultPlan`]: gbdt_cluster::FaultPlan

use crate::exec::{Layout, Strategy};
use crate::replica::{run_replica, ReplicaConfig, ReplicaStats, ROUTER_RANK};
use crate::router::{run_router, RouterConfig, RouterStats};
use crate::server::{ModelSlot, ServeConfig};
use crate::stats::{AvailRun, Clock};
use crate::wire::{PredictRequest, PredictResponse, PublishAck, ReplyStatus};
use bytes::Bytes;
use gbdt_cluster::comm::protocol::{
    SERVE_PUBLISH_TAG, SERVE_REQUEST_TAG, SERVE_RESPONSE_TAG, SERVE_STOP_TAG,
};
use gbdt_cluster::{Comm, CommError, FaultPlan, NetworkCostModel};
use gbdt_core::model::GbdtModel;
use std::time::Duration;

/// Knobs of one availability run.
#[derive(Debug, Clone)]
pub struct AvailConfig {
    /// Scenario label carried into the [`AvailRun`] report.
    pub label: String,
    /// Serving replicas behind the router.
    pub n_replicas: usize,
    /// Client ranks driving load.
    pub n_clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Rows per request.
    pub batch: usize,
    /// Aggregate offered load, requests/second; 0 = open throttle.
    pub qps: f64,
    /// Execution strategy every replica runs.
    pub strategy: Strategy,
    /// Compiled node layout every replica scores through.
    pub layout: Layout,
    /// Scoring threads per request batch in every replica (1 = serial,
    /// 0 = auto).
    pub score_threads: usize,
    /// Seed for the synthetic feature rows.
    pub seed: u64,
    /// Routing policy (its `n_replicas` is overridden by ours).
    pub router: RouterConfig,
    /// Replica lifecycle knobs.
    pub replica: ReplicaConfig,
    /// How long a client waits for a response before counting the
    /// request failed (must exceed `router.deadline × retry_budget`).
    pub client_patience: Duration,
}

impl Default for AvailConfig {
    fn default() -> Self {
        AvailConfig {
            label: "clean".into(),
            n_replicas: 3,
            n_clients: 2,
            requests_per_client: 150,
            batch: 8,
            qps: 0.0,
            strategy: Strategy::PerRow,
            layout: Layout::Flat,
            score_threads: 1,
            seed: 42,
            router: RouterConfig::default(),
            replica: ReplicaConfig::default(),
            client_patience: Duration::from_millis(900),
        }
    }
}

/// Everything one availability session produced: the client-side ledger
/// plus both server-side perspectives, for tests that assert failover
/// mechanics (retry counts, recoveries, suppression) and not just the
/// headline availability.
#[derive(Debug, Clone)]
pub struct AvailOutcome {
    /// The availability ledger.
    pub run: AvailRun,
    /// The router's own accounting.
    pub router: RouterStats,
    /// Per-replica accounting, by replica rank order.
    pub replicas: Vec<ReplicaStats>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-client batch: values in ±3 with ~12% missing cells.
fn client_rows(seed: u64, client: usize, batch: usize, n_features: usize) -> Vec<f32> {
    let mut state = seed ^ (client as u64).wrapping_mul(0x9e37_79b9);
    (0..batch * n_features)
        .map(|_| {
            if splitmix(&mut state).is_multiple_of(8) {
                f32::NAN
            } else {
                let unit = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                (unit * 6.0 - 3.0) as f32
            }
        })
        .collect()
}

/// Reference scores of a NaN-dense batch via the tree-walk predictor.
fn walk_scores(model: &GbdtModel, rows: &[f32], n_features: usize) -> Vec<f64> {
    let c = model.n_outputs();
    let mut out = vec![0.0; rows.len() / n_features * c];
    let mut feats = Vec::with_capacity(n_features);
    let mut vals = Vec::with_capacity(n_features);
    for (r, row) in rows.chunks_exact(n_features).enumerate() {
        feats.clear();
        vals.clear();
        for (f, &v) in row.iter().enumerate() {
            if !v.is_nan() {
                feats.push(f as u32);
                vals.push(v);
            }
        }
        model.predict_row_into(&feats, &vals, &mut out[r * c..(r + 1) * c]);
    }
    out
}

#[derive(Default)]
struct ClientOutcome {
    requests: u64,
    served: u64,
    degraded: u64,
    shed: u64,
    failed: u64,
    incorrect: u64,
    latencies_s: Vec<f64>,
    versions: Vec<u64>,
}

/// Expected scores per `(version − 1, stamp)`: `full` for
/// `trees_scored = 0`, `prefix` for the router's degraded budget.
struct Expectation {
    full: Vec<f64>,
    prefix: Option<Vec<f64>>,
}

fn bits_match(expected: &[f64], got: &[f64]) -> bool {
    expected.len() == got.len()
        && expected.iter().zip(got).all(|(a, b)| a.to_bits() == b.to_bits())
}

/// Waits for the response to `req_id`, discarding stale frames from
/// requests this client already gave up on. `None` = client-side timeout.
fn await_response(
    comm: &Comm,
    req_id: u64,
    patience_s: f64,
    clock: Clock,
) -> Option<PredictResponse> {
    let deadline_s = clock.elapsed_s() + patience_s;
    loop {
        match comm.recv(ROUTER_RANK, SERVE_RESPONSE_TAG) {
            Ok(bytes) => {
                if let Ok(resp) = PredictResponse::decode(&bytes) {
                    if resp.req_id == req_id {
                        return Some(resp);
                    }
                }
                // Stale response or stray ack frame: drop it and keep waiting.
            }
            Err(CommError::Timeout { .. }) => {}
            Err(_) => return None,
        }
        if clock.elapsed_s() >= deadline_s {
            return None;
        }
    }
}

/// One client: paced request/verify loop; the first client additionally
/// publishes each follow-up model at an evenly spaced request index.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    comm: &Comm,
    client_idx: usize,
    cfg: &AvailConfig,
    rows: &[f32],
    n_features: usize,
    expected: &[Expectation],
    publish_payloads: &[(usize, Vec<u8>)],
    clock: Clock,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    comm.set_recv_patience(Duration::from_millis(5));
    let per_client_qps = cfg.qps / cfg.n_clients.max(1) as f64;
    let patience_s = cfg.client_patience.as_secs_f64();
    for i in 0..cfg.requests_per_client {
        for &(at, ref payload) in publish_payloads {
            if at == i {
                let _ = comm.send(ROUTER_RANK, SERVE_PUBLISH_TAG, Bytes::from(payload.clone()));
                // Best-effort ack wait: a lost ack must not stall traffic —
                // verification keys on the stamped version either way.
                let ack_deadline_s = clock.elapsed_s() + patience_s;
                while clock.elapsed_s() < ack_deadline_s {
                    match comm.recv(ROUTER_RANK, SERVE_RESPONSE_TAG) {
                        Ok(bytes) => {
                            if PublishAck::decode(&bytes).is_ok() {
                                break;
                            }
                            // A stale prediction response; keep waiting.
                        }
                        Err(CommError::Timeout { .. }) => {}
                        Err(_) => break,
                    }
                }
            }
        }
        // Open-loop schedule; qps = 0 degrades to closed-loop pacing.
        let scheduled_s = if per_client_qps > 0.0 {
            let target = i as f64 / per_client_qps;
            let now = clock.elapsed_s();
            if now < target {
                std::thread::sleep(Duration::from_secs_f64(target - now));
            }
            target
        } else {
            clock.elapsed_s()
        };
        let req_id = 1 + i as u64;
        let req = PredictRequest {
            req_id,
            n_features: n_features as u32,
            max_trees: 0,
            rows: rows.to_vec(),
        };
        out.requests += 1;
        if comm.send(ROUTER_RANK, SERVE_REQUEST_TAG, Bytes::from(req.encode())).is_err() {
            out.failed += 1;
            continue;
        }
        let Some(resp) = await_response(comm, req_id, patience_s, clock) else {
            out.failed += 1;
            continue;
        };
        match resp.status {
            ReplyStatus::Shed => {
                out.shed += 1;
                continue;
            }
            ReplyStatus::Failed | ReplyStatus::Malformed => {
                out.failed += 1;
                continue;
            }
            ReplyStatus::Ok => {}
        }
        // Bit-exact verification against the stamped (version, mode).
        let Some(exp) = resp.version.checked_sub(1).and_then(|v| expected.get(v as usize))
        else {
            out.incorrect += 1;
            continue;
        };
        let reference = if resp.trees_scored == 0 {
            Some(&exp.full)
        } else if resp.trees_scored == cfg.router.degrade_trees {
            exp.prefix.as_ref()
        } else {
            None
        };
        match reference {
            Some(reference) if bits_match(reference, &resp.scores) => {
                if resp.trees_scored == 0 {
                    out.served += 1;
                } else {
                    out.degraded += 1;
                }
                out.versions.push(resp.version);
                out.latencies_s.push(clock.elapsed_s() - scheduled_s);
            }
            _ => out.incorrect += 1,
        }
    }
    let _ = client_idx;
    out
}

/// Runs a full replicated availability session and aggregates the ledger.
///
/// `models[0]` seeds every replica as version 1; each subsequent model
/// is published mid-run by the first client through the router (which
/// assigns versions `2, 3, …`). `faults` applies the same seeded chaos
/// machinery the training plane uses — scope it to serve tags with the
/// `tag=` grammar to target exactly the serving paths.
pub fn run_avail(
    models: &[GbdtModel],
    cfg: &AvailConfig,
    faults: Option<FaultPlan>,
) -> Result<AvailOutcome, String> {
    let first = models.first().ok_or("need at least one model")?;
    if cfg.n_replicas == 0 || cfg.n_clients == 0 || cfg.requests_per_client == 0 {
        return Err("n_replicas, n_clients, and requests_per_client must be positive".into());
    }
    if cfg.batch == 0 {
        return Err("batch must be positive".into());
    }
    let n_features = first.n_features.max(1);
    for (k, m) in models.iter().enumerate().skip(1) {
        if m.n_features.max(1) != n_features || m.n_outputs() != first.n_outputs() {
            return Err(format!("model {k} shape differs from the initial model"));
        }
    }
    let mut router_cfg = cfg.router;
    router_cfg.n_replicas = cfg.n_replicas;

    let batches: Vec<Vec<f32>> = (0..cfg.n_clients)
        .map(|c| client_rows(cfg.seed, c + 1, cfg.batch, n_features))
        .collect();
    // expectations[client][version - 1]: full + degraded-prefix scores.
    let expectations: Vec<Vec<Expectation>> = batches
        .iter()
        .map(|rows| {
            models
                .iter()
                .map(|m| {
                    let prefix = (router_cfg.degrade_trees > 0).then(|| {
                        let mut truncated = m.clone();
                        truncated.trees.truncate(router_cfg.degrade_trees as usize);
                        walk_scores(&truncated, rows, n_features)
                    });
                    Expectation { full: walk_scores(m, rows, n_features), prefix }
                })
                .collect()
        })
        .collect();
    // The first client publishes model k at an evenly spaced index.
    let publish_payloads: Vec<(usize, Vec<u8>)> = models
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, m)| (k * cfg.requests_per_client / models.len(), m.encode_bytes()))
        .collect();

    let world = 1 + cfg.n_replicas + cfg.n_clients;
    let (mesh, _control) = Comm::mesh_with(
        world,
        NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: 1e9 },
        faults,
    );
    let mut comms = mesh.into_iter();
    let router_comm = comms.next().ok_or("empty mesh")?;
    let replica_comms: Vec<Comm> = comms.by_ref().take(cfg.n_replicas).collect();
    let client_comms: Vec<Comm> = comms.collect();

    let slots: Vec<ModelSlot> = (0..cfg.n_replicas)
        .map(|_| ModelSlot::new_versioned(first, 1))
        .collect::<Result<_, _>>()?;
    let executor = ServeConfig {
        strategy: cfg.strategy,
        layout: cfg.layout,
        score_threads: cfg.score_threads,
    }
    .executor();
    let model_bytes = first.encode_bytes();
    let clock = Clock::new();

    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut replica_stats: Vec<ReplicaStats> = Vec::new();
    let mut router_result = None;
    std::thread::scope(|scope| {
        let executor = &executor;
        let cfg_ref = &cfg;
        let router_cfg = &router_cfg;
        let router = scope.spawn(move || {
            run_router(&router_comm, router_cfg, model_bytes, cfg_ref.n_clients)
        });
        let mut replica_handles = Vec::new();
        for (comm, slot) in replica_comms.into_iter().zip(&slots) {
            let replica_cfg = cfg.replica;
            replica_handles.push(scope.spawn(move || {
                run_replica(&comm, slot, executor.as_ref(), &replica_cfg)
            }));
        }
        let mut client_handles = Vec::new();
        for (idx, comm) in client_comms.into_iter().enumerate() {
            let rows = &batches[idx];
            let expected = &expectations[idx];
            let publishes: &[(usize, Vec<u8>)] =
                if idx == 0 { &publish_payloads } else { &[] };
            client_handles.push(scope.spawn(move || {
                let outcome = client_loop(
                    &comm, idx, cfg_ref, rows, n_features, expected, publishes, clock,
                );
                let _ = comm.send(ROUTER_RANK, SERVE_STOP_TAG, Bytes::new());
                outcome
            }));
        }
        for h in client_handles {
            if let Ok(outcome) = h.join() {
                outcomes.push(outcome);
            }
        }
        for h in replica_handles {
            if let Ok(Ok(stats)) = h.join() {
                replica_stats.push(stats);
            }
        }
        router_result = Some(router.join());
    });
    let wall_s = clock.elapsed_s();

    let router_stats = match router_result {
        Some(Ok(Ok(stats))) => stats,
        other => return Err(format!("router failed: {other:?}")),
    };
    if outcomes.len() != cfg.n_clients {
        return Err(format!(
            "{} of {} clients panicked",
            cfg.n_clients - outcomes.len(),
            cfg.n_clients
        ));
    }
    if replica_stats.len() != cfg.n_replicas {
        return Err(format!(
            "{} of {} replicas died unrecoverably",
            cfg.n_replicas - replica_stats.len(),
            cfg.n_replicas
        ));
    }
    let mut requests = 0u64;
    let mut served = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    let mut incorrect = 0u64;
    let mut latencies = Vec::new();
    let mut versions = Vec::new();
    for outcome in outcomes {
        requests += outcome.requests;
        served += outcome.served;
        degraded += outcome.degraded;
        shed += outcome.shed;
        failed += outcome.failed;
        incorrect += outcome.incorrect;
        latencies.extend(outcome.latencies_s);
        versions.extend(outcome.versions);
    }
    let mut run = AvailRun::from_outcomes(
        cfg.label.clone(),
        cfg.n_replicas,
        cfg.n_clients,
        cfg.qps,
        requests,
        served,
        degraded,
        shed,
        failed,
        incorrect,
        &latencies,
        versions,
        wall_s,
    );
    run.failed_over = router_stats.failed_over;
    run.hedges = router_stats.hedges;
    run.retries = router_stats.retries;
    run.recoveries = router_stats.recoveries;
    run.duplicates_suppressed = router_stats.duplicates_suppressed;
    Ok(AvailOutcome { run, router: router_stats, replicas: replica_stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    fn model_with_leaves(l: f64, r: f64, n_trees: usize) -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 4);
        for k in 0..n_trees {
            let mut t = Tree::new(2, 1);
            t.set_internal(0, (k % 4) as u32, 0, 0.25, true);
            t.set_leaf(1, vec![l + k as f64 * 0.125]);
            t.set_leaf(2, vec![r - k as f64 * 0.125]);
            m.trees.push(t);
        }
        m
    }

    #[test]
    fn clean_run_serves_everything() {
        let cfg = AvailConfig {
            n_replicas: 2,
            n_clients: 2,
            requests_per_client: 40,
            ..AvailConfig::default()
        };
        let outcome =
            run_avail(&[model_with_leaves(1.0, -1.0, 6)], &cfg, None).unwrap();
        assert_eq!(outcome.run.requests, 80);
        assert_eq!(outcome.run.served, 80);
        assert_eq!(outcome.run.incorrect, 0);
        assert_eq!(outcome.run.shed, 0);
        assert_eq!(outcome.run.failed, 0);
        assert!((outcome.run.availability - 1.0).abs() < 1e-12);
        assert_eq!(outcome.run.versions_seen, vec![1]);
        // Work was actually spread over the group.
        assert!(outcome.replicas.iter().all(|r| r.requests > 0));
    }

    #[test]
    fn publish_mid_run_yields_both_versions() {
        let cfg = AvailConfig {
            n_replicas: 2,
            n_clients: 2,
            requests_per_client: 60,
            ..AvailConfig::default()
        };
        let models =
            [model_with_leaves(1.0, -1.0, 6), model_with_leaves(9.0, -9.0, 6)];
        let outcome = run_avail(&models, &cfg, None).unwrap();
        assert_eq!(outcome.run.incorrect, 0);
        assert_eq!(outcome.run.versions_seen, vec![1, 2]);
        assert_eq!(outcome.router.publishes, 1);
    }

    #[test]
    fn degraded_mode_stays_verifiable() {
        let mut cfg = AvailConfig {
            n_replicas: 1,
            n_clients: 4,
            requests_per_client: 50,
            ..AvailConfig::default()
        };
        cfg.router.queue_cap = 2;
        cfg.router.high_water = 1;
        cfg.router.degrade_trees = 2;
        let outcome =
            run_avail(&[model_with_leaves(0.5, -0.5, 12)], &cfg, None).unwrap();
        assert_eq!(outcome.run.incorrect, 0);
        // With 4 clients against one tiny queue, degradation (and possibly
        // shedding) must kick in; whatever was answered verified bit-exact.
        assert!(outcome.run.served + outcome.run.degraded > 0);
    }
}
