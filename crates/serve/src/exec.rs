//! Execution strategies over a [`CompiledEnsemble`].
//!
//! Two interchangeable strategies implement [`ExecStrategy`], mirroring
//! the query-execution comparison of the decision-forest inference paper:
//!
//! * [`PerRow`] — tuple-at-a-time: each row traverses all trees, with
//!   4 trees interleaved in lockstep so the independent node fetches
//!   overlap (the self-looping leaf encoding makes lockstep safe — a
//!   lane that finishes early just spins on its leaf).
//! * [`Blocked`] — block-at-a-time: rows are processed in tiles and
//!   trees in blocks sized to stay L1-resident, so a block's nodes are
//!   fetched once and reused across the whole tile instead of being
//!   evicted between rows.
//!
//! Both accumulate scores in ascending tree order starting from the
//! model's init scores, which makes every strategy bit-identical to
//! [`GbdtModel::predict_row_into`] — the determinism contract the rest
//! of the repo pins.
//!
//! Rows are dense `f32` slices of width `ens.n_features`; a `NaN` cell
//! means *missing* and routes by the split's default direction, matching
//! the sparse predictor's semantics (see [`nan_dense_rows`]).
//!
//! Each strategy also exists over the 8-byte quantized node layout
//! ([`QuantPerRow`], [`QuantBlocked`], selected via [`Layout`]): the
//! traversal loops are monomorphized over a [`NodeView`], so the flat
//! and quantized walkers are the *same code* over different node
//! decodings — and since the quantized tables hold the exact original
//! `f32` cuts, both layouts are bit-identical by construction.
//!
//! [`GbdtModel::predict_row_into`]: gbdt_core::model::GbdtModel::predict_row_into

use crate::compile::{
    CompiledEnsemble, FlatNode, QuantNode, QUANT_DEFAULT_LEFT_BIT, QUANT_LINK_MASK,
};
use gbdt_data::dataset::{Dataset, FeatureMatrix};
use std::str::FromStr;

/// A borrowed node array the traversal loops monomorphize over: one
/// branchless step plus leaf-payload decoding.
trait NodeView: Copy {
    /// One traversal step: returns the next tree-local slot.
    fn step(&self, base: u32, idx: u32, row: &[f32]) -> u32;
    /// Leaf-value pool offset of the (leaf) node at `base + idx`.
    fn payload(&self, base: u32, idx: u32) -> usize;
}

/// The 16-byte [`FlatNode`] array.
#[derive(Clone, Copy)]
struct FlatView<'a> {
    nodes: &'a [FlatNode],
}

impl NodeView for FlatView<'_> {
    /// `go_left = (v <= t) | (isnan(v) & default_left)`; the taken child
    /// is `left + (1 − go_left)` because siblings are adjacent. Leaves
    /// encode `threshold = +∞`, `default_left = 1`, `left = self`, so
    /// they always "go left" into themselves.
    #[inline(always)]
    fn step(&self, base: u32, idx: u32, row: &[f32]) -> u32 {
        let n = self.nodes[(base + idx) as usize];
        let v = row[n.feature() as usize];
        let go_left = u32::from(v <= n.threshold) | (u32::from(v.is_nan()) & n.default_left());
        n.left + 1 - go_left
    }

    #[inline(always)]
    fn payload(&self, base: u32, idx: u32) -> usize {
        self.nodes[(base + idx) as usize].payload as usize
    }
}

/// The 8-byte [`QuantNode`] array plus its per-feature cut tables.
#[derive(Clone, Copy)]
struct QuantView<'a> {
    nodes: &'a [QuantNode],
    cut_base: &'a [u32],
    cuts: &'a [f32],
}

impl NodeView for QuantView<'_> {
    /// Identical comparison to the flat step — `cuts[..]` holds the
    /// exact original `f32` — with one extra branchless select: leaves
    /// (`slot == 0`, threshold reads as the `+∞` sentinel) self-loop by
    /// keeping `idx` instead of following the link, because their `meta`
    /// link bits hold the payload, not a child slot.
    #[inline(always)]
    fn step(&self, base: u32, idx: u32, row: &[f32]) -> u32 {
        let n = self.nodes[(base + idx) as usize];
        let f = n.feat as usize;
        let v = row[f];
        let t = self.cuts[(self.cut_base[f] + n.slot as u32) as usize];
        let dl = u32::from(n.meta & QUANT_DEFAULT_LEFT_BIT != 0);
        let go_left = u32::from(v <= t) | (u32::from(v.is_nan()) & dl);
        let leaf = u32::from(n.slot == 0);
        leaf * idx + (1 - leaf) * ((n.meta & QUANT_LINK_MASK) + 1 - go_left)
    }

    #[inline(always)]
    fn payload(&self, base: u32, idx: u32) -> usize {
        (self.nodes[(base + idx) as usize].meta & QUANT_LINK_MASK) as usize
    }
}

/// Adds tree `t`'s reached-leaf outputs for `row` into `out`.
#[inline(always)]
fn accumulate_leaf<V: NodeView>(
    ens: &CompiledEnsemble,
    view: V,
    t: usize,
    idx: u32,
    out: &mut [f64],
) {
    let p = view.payload(ens.tree_off[t], idx);
    for (o, v) in out.iter_mut().zip(&ens.leaf_values[p..p + ens.n_outputs]) {
        *o += v;
    }
}

#[inline]
fn flat_view(ens: &CompiledEnsemble) -> FlatView<'_> {
    FlatView { nodes: &ens.nodes }
}

/// A batch-scoring strategy over a compiled ensemble.
pub trait ExecStrategy {
    /// Short name used in grids and reports.
    fn label(&self) -> String;

    /// Scores `rows` (row-major, `rows.len() / ens.n_features` rows of
    /// width `ens.n_features`) into `out` (row-major,
    /// `n_rows × ens.n_outputs`, fully overwritten).
    fn predict_into(&self, ens: &CompiledEnsemble, rows: &[f32], out: &mut [f64]) {
        self.predict_prefix_into(ens, rows, usize::MAX, out);
    }

    /// Like [`Self::predict_into`] but scores only the first
    /// `max_trees.min(n_trees)` trees — the degraded-mode prefix. Because
    /// every strategy accumulates in ascending tree order, a `k`-tree
    /// prefix is bit-identical to scoring a model truncated to its first
    /// `k` trees; `usize::MAX` (or anything ≥ `n_trees`) is a full score.
    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    );
}

fn check_shapes(ens: &CompiledEnsemble, rows: &[f32], out: &[f64]) -> usize {
    assert_eq!(rows.len() % ens.n_features, 0, "ragged row buffer");
    let n_rows = rows.len() / ens.n_features;
    assert_eq!(out.len(), n_rows * ens.n_outputs, "output shape mismatch");
    n_rows
}

/// Tuple-at-a-time execution with 4-way tree interleaving.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerRow;

/// Trees interleaved per row: enough lanes to overlap dependent node
/// fetches, few enough that all lanes' paths stay cache-resident.
const LANES: usize = 4;

/// The per-row traversal, monomorphized over the node layout.
fn per_row_prefix<V: NodeView>(
    ens: &CompiledEnsemble,
    view: V,
    rows: &[f32],
    max_trees: usize,
    out: &mut [f64],
) {
    let n_rows = check_shapes(ens, rows, out);
    let n_trees = ens.n_trees().min(max_trees);
    for r in 0..n_rows {
        let row = &rows[r * ens.n_features..(r + 1) * ens.n_features];
        let o = &mut out[r * ens.n_outputs..(r + 1) * ens.n_outputs];
        o.copy_from_slice(&ens.init_scores);
        let mut t = 0usize;
        while t < n_trees {
            let lanes = LANES.min(n_trees - t);
            let mut idx = [0u32; LANES];
            // All lanes walk the deepest lane's step count; shallower
            // lanes reach their leaf early and self-loop.
            let steps = ens.tree_steps[t..t + lanes].iter().copied().max().unwrap_or(0);
            for _ in 0..steps {
                for (l, slot) in idx.iter_mut().enumerate().take(lanes) {
                    *slot = view.step(ens.tree_off[t + l], *slot, row);
                }
            }
            // Leaf sums applied in ascending tree order (bit-identity).
            for (l, slot) in idx.iter().enumerate().take(lanes) {
                accumulate_leaf(ens, view, t + l, *slot, o);
            }
            t += lanes;
        }
    }
}

impl ExecStrategy for PerRow {
    fn label(&self) -> String {
        "per-row".into()
    }

    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    ) {
        per_row_prefix(ens, flat_view(ens), rows, max_trees, out);
    }
}

/// [`PerRow`] over the 8-byte quantized nodes (falls back to the flat
/// nodes when [`CompiledEnsemble::quant`] is absent — same bits, larger
/// footprint).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantPerRow;

impl ExecStrategy for QuantPerRow {
    fn label(&self) -> String {
        "per-row@quant".into()
    }

    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    ) {
        match &ens.quant {
            Some(q) => per_row_prefix(
                ens,
                QuantView { nodes: &q.nodes, cut_base: &q.cut_base, cuts: &q.cuts },
                rows,
                max_trees,
                out,
            ),
            None => per_row_prefix(ens, flat_view(ens), rows, max_trees, out),
        }
    }
}

/// Block-at-a-time execution: row tiles × L1-resident tree blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked {
    /// Trees per block; `0` sizes blocks by node count so each block's
    /// flat nodes fit comfortably in L1d.
    pub trees_per_block: usize,
}

/// Rows per tile: small enough that a tile's rows + partial outputs stay
/// cached while a tree block streams over them.
const ROW_TILE: usize = 64;

/// Auto block budget: 1024 nodes × 16 B = 16 KiB, half a typical L1d,
/// leaving room for the row tile.
const BLOCK_NODE_BUDGET: u32 = 1024;

/// Auto block budget over 8-byte quantized nodes: the same 16 KiB of
/// L1d holds twice the trees per block.
const QUANT_BLOCK_NODE_BUDGET: u32 = 2048;

/// Greedy block boundaries: consecutive trees packed until the node
/// budget (or fixed tree count) is reached. Every tree lands in exactly
/// one block, in ascending order.
fn tree_blocks(
    ens: &CompiledEnsemble,
    trees_per_block: usize,
    node_budget: u32,
) -> Vec<(usize, usize)> {
    let n_trees = ens.n_trees();
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < n_trees {
        let mut end = start + 1;
        if trees_per_block > 0 {
            end = (start + trees_per_block).min(n_trees);
        } else {
            while end < n_trees && ens.tree_off[end + 1] - ens.tree_off[start] <= node_budget {
                end += 1;
            }
        }
        blocks.push((start, end));
        start = end;
    }
    blocks
}

impl Blocked {
    fn blocks(&self, ens: &CompiledEnsemble) -> Vec<(usize, usize)> {
        tree_blocks(ens, self.trees_per_block, BLOCK_NODE_BUDGET)
    }
}

/// The blocked traversal, monomorphized over the node layout.
fn blocked_prefix<V: NodeView>(
    ens: &CompiledEnsemble,
    view: V,
    blocks: &[(usize, usize)],
    rows: &[f32],
    max_trees: usize,
    out: &mut [f64],
) {
    let n_rows = check_shapes(ens, rows, out);
    let limit = ens.n_trees().min(max_trees);
    for o in out.chunks_exact_mut(ens.n_outputs) {
        o.copy_from_slice(&ens.init_scores);
    }
    let mut tile_start = 0usize;
    while tile_start < n_rows {
        let tile_end = (tile_start + ROW_TILE).min(n_rows);
        // Ascending blocks, ascending trees within a block, so each
        // row's accumulation order is ascending tree order — the same
        // f64 addition sequence as the per-row strategy.
        for &(bs, be) in blocks {
            if bs >= limit {
                break;
            }
            for r in tile_start..tile_end {
                let row = &rows[r * ens.n_features..(r + 1) * ens.n_features];
                let o = &mut out[r * ens.n_outputs..(r + 1) * ens.n_outputs];
                for t in bs..be.min(limit) {
                    let mut idx = 0u32;
                    for _ in 0..ens.tree_steps[t] {
                        idx = view.step(ens.tree_off[t], idx, row);
                    }
                    accumulate_leaf(ens, view, t, idx, o);
                }
            }
        }
        tile_start = tile_end;
    }
}

impl ExecStrategy for Blocked {
    fn label(&self) -> String {
        match self.trees_per_block {
            0 => "blocked".into(),
            n => format!("blocked:{n}"),
        }
    }

    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    ) {
        blocked_prefix(ens, flat_view(ens), &self.blocks(ens), rows, max_trees, out);
    }
}

/// [`Blocked`] over the 8-byte quantized nodes; auto blocks pack twice
/// the trees into the same L1 budget (falls back to flat when
/// [`CompiledEnsemble::quant`] is absent).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantBlocked {
    /// Trees per block; `0` sizes blocks by the quantized node budget.
    pub trees_per_block: usize,
}

impl ExecStrategy for QuantBlocked {
    fn label(&self) -> String {
        match self.trees_per_block {
            0 => "blocked@quant".into(),
            n => format!("blocked:{n}@quant"),
        }
    }

    fn predict_prefix_into(
        &self,
        ens: &CompiledEnsemble,
        rows: &[f32],
        max_trees: usize,
        out: &mut [f64],
    ) {
        match &ens.quant {
            Some(q) => {
                let blocks = tree_blocks(ens, self.trees_per_block, QUANT_BLOCK_NODE_BUDGET);
                let view = QuantView { nodes: &q.nodes, cut_base: &q.cut_base, cuts: &q.cuts };
                blocked_prefix(ens, view, &blocks, rows, max_trees, out);
            }
            None => {
                let blocks = tree_blocks(ens, self.trees_per_block, BLOCK_NODE_BUDGET);
                blocked_prefix(ens, flat_view(ens), &blocks, rows, max_trees, out);
            }
        }
    }
}

/// A CLI-selectable strategy (grids, the serve bench, CI smokes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// [`PerRow`].
    PerRow,
    /// [`Blocked`] with its `trees_per_block` knob (0 = auto).
    Blocked(usize),
}

/// A CLI-selectable compiled-node layout (orthogonal to [`Strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// 16-byte [`FlatNode`]s — the default.
    #[default]
    Flat,
    /// 8-byte [`QuantNode`]s with per-feature exact-cut tables; scoring
    /// is bit-identical to flat, the working set roughly halves.
    Quant,
}

impl Layout {
    /// Grid/report label (round-trips through [`FromStr`]).
    pub fn label(&self) -> &'static str {
        match self {
            Layout::Flat => "flat",
            Layout::Quant => "quant",
        }
    }
}

impl FromStr for Layout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(Layout::Flat),
            "quant" => Ok(Layout::Quant),
            _ => Err(format!("unknown layout {s:?} (expected flat or quant)")),
        }
    }
}

impl Strategy {
    /// The executor this name selects, over the flat layout.
    pub fn executor(&self) -> Box<dyn ExecStrategy + Send + Sync> {
        self.executor_for(Layout::Flat)
    }

    /// The executor for this strategy over the given node layout.
    pub fn executor_for(&self, layout: Layout) -> Box<dyn ExecStrategy + Send + Sync> {
        match (*self, layout) {
            (Strategy::PerRow, Layout::Flat) => Box::new(PerRow),
            (Strategy::PerRow, Layout::Quant) => Box::new(QuantPerRow),
            (Strategy::Blocked(n), Layout::Flat) => Box::new(Blocked { trees_per_block: n }),
            (Strategy::Blocked(n), Layout::Quant) => {
                Box::new(QuantBlocked { trees_per_block: n })
            }
        }
    }

    /// Grid/report label (round-trips through [`FromStr`]).
    pub fn label(&self) -> String {
        self.executor().label()
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-row" => Ok(Strategy::PerRow),
            "blocked" => Ok(Strategy::Blocked(0)),
            _ => match s.strip_prefix("blocked:") {
                Some(n) => n
                    .parse::<usize>()
                    .map(Strategy::Blocked)
                    .map_err(|e| format!("bad trees_per_block in {s:?}: {e}")),
                None => Err(format!(
                    "unknown strategy {s:?} (expected per-row, blocked, or blocked:N)"
                )),
            },
        }
    }
}

/// Converts a dataset to the dense NaN-for-missing row buffer the
/// executors consume, `n_features` wide per row.
///
/// Sparse rows leave absent features as `NaN` so they route by default
/// direction — exactly the [`GbdtModel::predict_row_into`] semantics.
/// Dense datasets are copied verbatim (they carry no missing values).
///
/// [`GbdtModel::predict_row_into`]: gbdt_core::model::GbdtModel::predict_row_into
pub fn nan_dense_rows(dataset: &Dataset, n_features: usize) -> Vec<f32> {
    match &dataset.features {
        FeatureMatrix::Sparse(csr) => {
            let mut rows = vec![f32::NAN; dataset.n_instances() * n_features];
            for (i, feats, vals) in csr.iter_rows() {
                let row = &mut rows[i * n_features..(i + 1) * n_features];
                for (&f, &v) in feats.iter().zip(vals) {
                    if (f as usize) < n_features {
                        row[f as usize] = v;
                    }
                }
            }
            rows
        }
        FeatureMatrix::Dense(dense) => {
            let mut rows = Vec::with_capacity(dense.n_rows() * n_features);
            for i in 0..dense.n_rows() {
                let row = dense.row(i);
                rows.extend_from_slice(&row[..row.len().min(n_features)]);
                rows.extend(std::iter::repeat_n(f32::NAN, n_features.saturating_sub(row.len())));
            }
            rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use gbdt_core::model::GbdtModel;
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// Random complete-indexed tree over `n_features` features.
    fn random_tree(seed: &mut u64, n_layers: usize, n_outputs: usize, n_features: u32) -> Tree {
        let mut tree = Tree::new(n_layers, n_outputs);
        let mut frontier = vec![0u32];
        let max = gbdt_core::tree::max_nodes(n_layers) as u32;
        while let Some(id) = frontier.pop() {
            let can_split = gbdt_core::tree::children(id).1 < max;
            if can_split && splitmix(seed) % 10 < 7 {
                tree.set_internal(
                    id,
                    (splitmix(seed) % n_features as u64) as u32,
                    (splitmix(seed) % 32) as u16,
                    (unit(seed) * 2.0) as f32,
                    splitmix(seed).is_multiple_of(2),
                );
                let (l, r) = gbdt_core::tree::children(id);
                frontier.push(l);
                frontier.push(r);
            } else {
                tree.set_leaf(id, (0..n_outputs).map(|_| unit(seed)).collect());
            }
        }
        tree
    }

    fn random_model(seed: u64, n_trees: usize, n_features: usize, c: usize) -> GbdtModel {
        let objective = if c == 1 {
            Objective::SquaredError
        } else {
            Objective::Softmax { n_classes: c }
        };
        let mut m = GbdtModel::new(objective, 0.1, n_features);
        let mut state = seed;
        for _ in 0..n_trees {
            m.trees.push(random_tree(&mut state, 5, c, n_features as u32));
        }
        m
    }

    /// Random rows with ~20% missing (NaN) cells.
    fn random_rows(seed: u64, n_rows: usize, n_features: usize) -> Vec<f32> {
        let mut state = seed;
        (0..n_rows * n_features)
            .map(|_| {
                if splitmix(&mut state).is_multiple_of(5) {
                    f32::NAN
                } else {
                    (unit(&mut state) * 3.0) as f32
                }
            })
            .collect()
    }

    /// Reference scores via the tree-walk predictor (sparse row built
    /// from the non-NaN cells, so missing routes by default direction).
    fn reference(model: &GbdtModel, rows: &[f32], n_features: usize) -> Vec<f64> {
        let c = model.n_outputs();
        let mut out = vec![0.0; rows.len() / n_features * c];
        for (r, row) in rows.chunks_exact(n_features).enumerate() {
            let mut feats = Vec::new();
            let mut vals = Vec::new();
            for (f, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    feats.push(f as u32);
                    vals.push(v);
                }
            }
            model.predict_row_into(&feats, &vals, &mut out[r * c..(r + 1) * c]);
        }
        out
    }

    #[test]
    fn strategies_bit_identical_to_tree_walk() {
        for (seed, n_trees, c) in [(1u64, 1usize, 1usize), (2, 13, 1), (3, 40, 3), (4, 7, 2)] {
            let n_features = 9;
            let model = random_model(seed, n_trees, n_features, c);
            let ens = compile(&model, 0).unwrap();
            let rows = random_rows(seed ^ 0xabcd, 97, n_features);
            let expect = reference(&model, &rows, n_features);
            for strategy in [
                Strategy::PerRow,
                Strategy::Blocked(0),
                Strategy::Blocked(1),
                Strategy::Blocked(5),
            ] {
                for layout in [Layout::Flat, Layout::Quant] {
                    let exec = strategy.executor_for(layout);
                    let mut got = vec![0.0f64; expect.len()];
                    exec.predict_into(&ens, &rows, &mut got);
                    let same = expect
                        .iter()
                        .zip(&got)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        same,
                        "{} diverged (seed {seed}, T {n_trees}, C {c})",
                        exec.label()
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_scoring_matches_truncated_model() {
        for (seed, n_trees, c) in [(11u64, 10usize, 1usize), (12, 25, 3)] {
            let n_features = 7;
            let model = random_model(seed, n_trees, n_features, c);
            let ens = compile(&model, 0).unwrap();
            let rows = random_rows(seed ^ 0x5150, 53, n_features);
            for k in [0usize, 1, 3, n_trees - 1, n_trees, n_trees + 5] {
                // Reference: a model truncated to its first k trees.
                let mut truncated = model.clone();
                truncated.trees.truncate(k);
                let expect = reference(&truncated, &rows, n_features);
                for strategy in [Strategy::PerRow, Strategy::Blocked(0), Strategy::Blocked(4)] {
                    for layout in [Layout::Flat, Layout::Quant] {
                        let exec = strategy.executor_for(layout);
                        let mut got = vec![0.0f64; expect.len()];
                        exec.predict_prefix_into(&ens, &rows, k, &mut got);
                        let same =
                            expect.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
                        assert!(same, "{} prefix k={k} diverged (seed {seed})", exec.label());
                    }
                }
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_model() {
        let model = random_model(5, 3, 4, 1);
        let ens = compile(&model, 0).unwrap();
        let mut out: [f64; 0] = [];
        PerRow.predict_into(&ens, &[], &mut out);
        let empty = GbdtModel::new(Objective::SquaredError, 0.1, 4);
        let ens = compile(&empty, 0).unwrap();
        let rows = vec![1.0f32; ens.n_features * 3];
        let mut out = vec![9.0f64; 3];
        Blocked::default().predict_into(&ens, &rows, &mut out);
        assert_eq!(out, vec![0.0; 3]); // init scores only
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in ["per-row", "blocked", "blocked:16"] {
            let parsed: Strategy = s.parse().unwrap();
            assert_eq!(parsed.label(), s);
        }
        assert!("walk".parse::<Strategy>().is_err());
        assert!("blocked:x".parse::<Strategy>().is_err());
        for l in ["flat", "quant"] {
            let parsed: Layout = l.parse().unwrap();
            assert_eq!(parsed.label(), l);
        }
        assert!("packed".parse::<Layout>().is_err());
        assert_eq!(Strategy::PerRow.executor_for(Layout::Quant).label(), "per-row@quant");
        assert_eq!(Strategy::Blocked(7).executor_for(Layout::Quant).label(), "blocked:7@quant");
    }

    #[test]
    fn quant_executors_fall_back_to_flat_when_quant_absent() {
        let model = random_model(21, 9, 6, 1);
        let mut ens = compile(&model, 0).unwrap();
        let rows = random_rows(0xfeed, 41, 6);
        let expect = reference(&model, &rows, 6);
        ens.quant = None; // simulate a model exceeding the quant widths
        for strategy in [Strategy::PerRow, Strategy::Blocked(0)] {
            let exec = strategy.executor_for(Layout::Quant);
            let mut got = vec![0.0f64; expect.len()];
            exec.predict_into(&ens, &rows, &mut got);
            let same = expect.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{} fallback diverged", exec.label());
        }
    }

    #[test]
    fn quant_blocks_pack_twice_the_trees() {
        let model = random_model(9, 200, 6, 1);
        let ens = compile(&model, 0).unwrap();
        let flat_blocks = Blocked::default().blocks(&ens);
        let quant_blocks = tree_blocks(&ens, 0, QUANT_BLOCK_NODE_BUDGET);
        assert!(
            quant_blocks.len() < flat_blocks.len(),
            "same L1 bytes must hold more quantized trees: {} vs {}",
            quant_blocks.len(),
            flat_blocks.len()
        );
    }

    #[test]
    fn blocked_auto_packs_by_node_budget() {
        let model = random_model(9, 200, 6, 1);
        let ens = compile(&model, 0).unwrap();
        let blocks = Blocked::default().blocks(&ens);
        assert!(blocks.len() > 1, "200 trees should exceed one L1 block");
        // Blocks tile the tree range exactly, in order.
        let mut next = 0;
        for &(s, e) in &blocks {
            assert_eq!(s, next);
            assert!(e > s);
            next = e;
        }
        assert_eq!(next, ens.n_trees());
        // Every block beyond a single tree respects the node budget.
        for &(s, e) in &blocks {
            if e - s > 1 {
                assert!(ens.tree_off[e] - ens.tree_off[s] <= super::BLOCK_NODE_BUDGET);
            }
        }
    }
}
