//! One serving replica in a replicated group.
//!
//! A replica rank holds the compiled ensemble in a [`ModelSlot`] and
//! answers frames from the router (never directly from clients): routed
//! prediction requests, router-versioned model publishes
//! ([`PublishFrame`]), health pings, and stop. Crashes come from the
//! mesh's [`FaultPlan`]: before handling each frame the loop polls
//! [`FaultPlan::serve_crash_at`] against its cumulative frame ordinal,
//! and a hit unwinds the loop as [`ReplicaExit::Crashed`]. The
//! supervising wrapper ([`run_replica`]) then simulates the process
//! dying and restarting — it sleeps the recovery delay, **purges** every
//! queued and buffered frame (a dead process loses its socket buffers),
//! announces itself on `SERVE_RECOVER_TAG`, and reseats whatever model
//! the router sends back before rejoining the group. Versions are always
//! router-assigned, so a replica that slept through a publish can never
//! stamp a response with a version that means something different on a
//! sibling replica.
//!
//! [`FaultPlan`]: gbdt_cluster::FaultPlan
//! [`FaultPlan::serve_crash_at`]: gbdt_cluster::FaultPlan::serve_crash_at

use crate::exec::ExecStrategy;
use crate::server::{score_request, ModelSlot};
use crate::wire::{PredictRequest, PublishFrame};
use bytes::Bytes;
use gbdt_cluster::comm::protocol::{
    SERVE_ACK_TAG, SERVE_HEALTH_PING_TAG, SERVE_HEALTH_PONG_TAG, SERVE_PUBLISH_TAG,
    SERVE_RECOVER_TAG, SERVE_REPLY_TAG, SERVE_ROUTE_TAG, SERVE_STOP_TAG,
};
use gbdt_cluster::{Comm, CommError};
use std::time::Duration;

/// Rank of the router in a replicated serving mesh.
pub const ROUTER_RANK: usize = 0;

/// Knobs of one replica's lifecycle.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// How long a crashed replica stays dead before recovering (real
    /// time — the router must observe the outage).
    pub recovery_delay: Duration,
    /// Receive patience per poll of the frame loop.
    pub tick: Duration,
    /// Give up recovering if the router doesn't resync a model within
    /// this many ticks (the run is ending or the router is gone).
    pub max_resync_ticks: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            recovery_delay: Duration::from_millis(30),
            tick: Duration::from_millis(5),
            max_resync_ticks: 400,
        }
    }
}

/// What one replica session handled (accumulated across crash cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaStats {
    /// Routed requests scored and answered.
    pub requests: u64,
    /// Rows scored.
    pub rows: u64,
    /// Requests answered from a degraded tree-prefix budget.
    pub degraded: u64,
    /// Model publishes applied (stale ones are skipped, not counted).
    pub publishes: u64,
    /// Publish frames skipped as stale (version ≤ served).
    pub stale_publishes: u64,
    /// Injected crashes survived.
    pub crashes: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Replies/acks/pongs that could not be sent (lossy plan exhausted
    /// the retry budget); the router's deadline machinery covers these.
    pub send_failures: u64,
    /// Version being served when the loop exited.
    pub last_version: u64,
}

/// Why the inner frame loop returned.
enum LoopExit {
    /// Router said stop; the session is over.
    Stopped,
    /// An injected crash fired; the wrapper should run recovery.
    Crashed,
}

/// Answers `payload` frames until a stop or an injected crash.
///
/// `frames_handled` is the replica's cumulative frame ordinal across
/// crash cycles; [`FaultPlan::serve_crash_at`] is polled against it
/// before each frame so a `crash=R@K` plan entry fires exactly once.
///
/// [`FaultPlan::serve_crash_at`]: gbdt_cluster::FaultPlan::serve_crash_at
fn replica_loop(
    comm: &Comm,
    slot: &ModelSlot,
    strategy: &dyn ExecStrategy,
    cfg: &ReplicaConfig,
    stats: &mut ReplicaStats,
    frames_handled: &mut usize,
) -> Result<LoopExit, CommError> {
    let tags =
        [SERVE_ROUTE_TAG, SERVE_PUBLISH_TAG, SERVE_HEALTH_PING_TAG, SERVE_STOP_TAG];
    comm.set_recv_patience(cfg.tick);
    loop {
        let (from, tag, payload) = match comm.recv_any(&tags) {
            Ok(frame) => frame,
            Err(CommError::Timeout { .. }) => continue,
            Err(e) => return Err(e),
        };
        if from != ROUTER_RANK {
            // Replicas only talk to the router; a stray client frame is a
            // protocol bug upstream, not this replica's problem.
            stats.malformed += 1;
            continue;
        }
        if let Some(plan) = comm.faults() {
            if plan.serve_crash_at(comm.rank(), *frames_handled) {
                // Count the fatal frame so this crash point never re-fires
                // after recovery (the frame itself is lost with the purge).
                *frames_handled += 1;
                stats.crashes += 1;
                return Ok(LoopExit::Crashed);
            }
        }
        *frames_handled += 1;
        match tag {
            SERVE_STOP_TAG => return Ok(LoopExit::Stopped),
            SERVE_HEALTH_PING_TAG => {
                let pong = slot.version().to_le_bytes().to_vec();
                if comm.send(from, SERVE_HEALTH_PONG_TAG, Bytes::from(pong)).is_err() {
                    stats.send_failures += 1;
                }
            }
            SERVE_ROUTE_TAG => match PredictRequest::decode(&payload) {
                Ok(req) => {
                    let ens = slot.load();
                    let response = score_request(&ens, strategy, &req);
                    stats.requests += 1;
                    stats.rows += req.n_rows() as u64;
                    if response.trees_scored > 0 {
                        stats.degraded += 1;
                    }
                    if comm
                        .send(from, SERVE_REPLY_TAG, Bytes::from(response.encode()))
                        .is_err()
                    {
                        stats.send_failures += 1;
                    }
                }
                Err(_) => stats.malformed += 1,
            },
            _ => {
                // SERVE_PUBLISH_TAG
                match PublishFrame::decode(&payload) {
                    Ok(frame) => match apply_publish(slot, &frame) {
                        Ok(applied) => {
                            if applied {
                                stats.publishes += 1;
                            } else {
                                stats.stale_publishes += 1;
                            }
                            let ack = slot.version().to_le_bytes().to_vec();
                            if comm.send(from, SERVE_ACK_TAG, Bytes::from(ack)).is_err() {
                                stats.send_failures += 1;
                            }
                        }
                        Err(_) => stats.malformed += 1,
                    },
                    Err(_) => stats.malformed += 1,
                }
            }
        }
    }
}

/// Seats a router-versioned publish; `Ok(false)` means it was stale
/// (version ≤ served — a delayed or re-sent frame) and was skipped.
fn apply_publish(slot: &ModelSlot, frame: &PublishFrame) -> Result<bool, String> {
    if frame.version <= slot.version() {
        return Ok(false);
    }
    let model = gbdt_core::model::GbdtModel::decode_bytes(&frame.model_bytes)?;
    slot.publish_versioned(&model, frame.version)?;
    Ok(true)
}

/// Runs one replica for the whole session, supervising crash cycles.
///
/// Returns the accumulated stats when the router stops the group, or the
/// first unrecoverable comm error.
pub fn run_replica(
    comm: &Comm,
    slot: &ModelSlot,
    strategy: &dyn ExecStrategy,
    cfg: &ReplicaConfig,
) -> Result<ReplicaStats, CommError> {
    let mut stats = ReplicaStats::default();
    let mut frames_handled = 0usize;
    loop {
        match replica_loop(comm, slot, strategy, cfg, &mut stats, &mut frames_handled)? {
            LoopExit::Stopped => {
                stats.last_version = slot.version();
                return Ok(stats);
            }
            LoopExit::Crashed => {
                // Dead: whatever was parked in our buffers dies with us.
                std::thread::sleep(cfg.recovery_delay);
                comm.purge_pending();
                // Rejoin: announce, then wait for the router to resync the
                // current model (it may already be ours if the crash hit
                // after the last publish was applied — that frame comes
                // back stale and is skipped). The announcement is re-sent
                // periodically in case a lossy plan ate it.
                let mut resynced = false;
                for tick in 0..cfg.max_resync_ticks {
                    if tick % 50 == 0 {
                        match comm.send(ROUTER_RANK, SERVE_RECOVER_TAG, Bytes::new()) {
                            Ok(()) => {}
                            Err(CommError::PeerGone { .. }) => {
                                // The router is gone (session torn down
                                // mid-recovery); nothing left to rejoin.
                                stats.last_version = slot.version();
                                return Ok(stats);
                            }
                            Err(_) => stats.send_failures += 1,
                        }
                    }
                    match comm.recv_any(&[SERVE_PUBLISH_TAG, SERVE_STOP_TAG]) {
                        Ok((from, tag, payload)) if from == ROUTER_RANK => {
                            if tag == SERVE_STOP_TAG {
                                stats.last_version = slot.version();
                                return Ok(stats);
                            }
                            frames_handled += 1;
                            match PublishFrame::decode(&payload) {
                                Ok(frame) => {
                                    match apply_publish(slot, &frame) {
                                        Ok(true) => stats.publishes += 1,
                                        Ok(false) => stats.stale_publishes += 1,
                                        Err(_) => {
                                            stats.malformed += 1;
                                            continue;
                                        }
                                    }
                                    let ack = slot.version().to_le_bytes().to_vec();
                                    if comm
                                        .send(ROUTER_RANK, SERVE_ACK_TAG, Bytes::from(ack))
                                        .is_err()
                                    {
                                        stats.send_failures += 1;
                                    }
                                    resynced = true;
                                    break;
                                }
                                Err(_) => stats.malformed += 1,
                            }
                        }
                        Ok(_) => stats.malformed += 1,
                        Err(CommError::Timeout { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                if !resynced {
                    // The router never resynced us — the session is likely
                    // over; exit cleanly with what we have.
                    stats.last_version = slot.version();
                    return Ok(stats);
                }
            }
        }
    }
}
