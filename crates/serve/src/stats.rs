//! Serving-side time measurement and latency accounting.
//!
//! This module is the **only** place in `gbdt-serve` permitted to read the
//! wall clock (`gbdt-lint`'s `wall-clock` rule allowlists exactly this
//! file). The scoring hot path stays clock-free — traversal kernels
//! measuring themselves would both perturb the measurement and smuggle
//! nondeterminism next to the bit-identity contract. Everything else
//! (traffic pacing, latency percentiles) goes through [`Clock`].

use std::time::Instant;

/// A monotonic stopwatch handed to the traffic generator and harnesses.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// Starts the stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Clock { start: Instant::now() }
    }

    /// Seconds elapsed since [`Clock::new`].
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Latency percentile from a sample set, in the same unit as the samples.
///
/// Nearest-rank on a sorted copy: `p(q) = sorted[⌈q·n⌉ − 1]`. Returns 0
/// for an empty sample set.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One traffic run's accounting — the serving analogue of the training
/// side's `SystemRun`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Strategy label the server executed.
    pub strategy: String,
    /// Rows per request batch.
    pub batch: usize,
    /// Trees in the served (initial) model.
    pub n_trees: usize,
    /// Client threads driving traffic.
    pub n_clients: usize,
    /// Offered load in requests/second across all clients (0 = open
    /// throttle).
    pub target_qps: f64,
    /// Requests completed (every request must complete: drops are a
    /// protocol bug, not a load signal).
    pub requests: u64,
    /// Requests that never got a response (must be 0).
    pub dropped: u64,
    /// Rows scored.
    pub rows: u64,
    /// Model publishes observed mid-run.
    pub publishes: u64,
    /// Distinct model versions stamped on responses, ascending.
    pub versions_seen: Vec<u64>,
    /// Wall-clock duration of the measured window, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Scored rows per second.
    pub rows_per_sec: f64,
    /// Median request latency, milliseconds (open-loop: measured from the
    /// request's *scheduled* start, so queueing delay is not hidden).
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
}

impl ServeRun {
    /// Builds the run record from raw per-request latencies (seconds).
    #[allow(clippy::too_many_arguments)]
    pub fn from_latencies(
        strategy: String,
        batch: usize,
        n_trees: usize,
        n_clients: usize,
        target_qps: f64,
        latencies_s: &[f64],
        dropped: u64,
        rows: u64,
        publishes: u64,
        mut versions_seen: Vec<u64>,
        wall_s: f64,
    ) -> Self {
        versions_seen.sort_unstable();
        versions_seen.dedup();
        let requests = latencies_s.len() as u64;
        let wall = wall_s.max(1e-9);
        ServeRun {
            strategy,
            batch,
            n_trees,
            n_clients,
            target_qps,
            requests,
            dropped,
            rows,
            publishes,
            versions_seen,
            wall_s,
            throughput_rps: requests as f64 / wall,
            rows_per_sec: rows as f64 / wall,
            p50_ms: percentile(latencies_s, 0.50) * 1e3,
            p99_ms: percentile(latencies_s, 0.99) * 1e3,
            p999_ms: percentile(latencies_s, 0.999) * 1e3,
        }
    }
}

/// One availability run's ledger — the chaos-facing analogue of
/// [`ServeRun`]: what fraction of offered load got a verified answer,
/// and at what latency, while replicas crashed and frames misbehaved.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailRun {
    /// Scenario label (e.g. `clean` or the fault spec).
    pub label: String,
    /// Serving replicas behind the router.
    pub n_replicas: usize,
    /// Client threads driving load.
    pub n_clients: usize,
    /// Offered load in requests/second across all clients (0 = open
    /// throttle).
    pub target_qps: f64,
    /// Requests issued by clients.
    pub requests: u64,
    /// Verified full-ensemble responses.
    pub served: u64,
    /// Verified degraded (tree-prefix) responses.
    pub degraded: u64,
    /// Requests refused with a typed `Shed` response.
    pub shed: u64,
    /// Requests that failed: typed `Failed` responses plus client-side
    /// timeouts.
    pub failed: u64,
    /// Requests that completed only after a failover retry.
    pub failed_over: u64,
    /// Hedged backup requests the router issued.
    pub hedges: u64,
    /// Failover retries the router issued.
    pub retries: u64,
    /// Replica crash-recoveries observed.
    pub recoveries: u64,
    /// Late/duplicate replica replies the router suppressed.
    pub duplicates_suppressed: u64,
    /// Responses whose scores did not bit-match their stamped
    /// `(version, trees_scored)` expectation. **Must be 0.**
    pub incorrect: u64,
    /// Verified responses over non-shed requests.
    pub availability: f64,
    /// Verified responses per second of wall time.
    pub goodput_rps: f64,
    /// Distinct model versions stamped on verified responses, ascending.
    pub versions_seen: Vec<u64>,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Median verified-response latency, ms (from scheduled start).
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th percentile latency, ms.
    pub p999_ms: f64,
}

impl AvailRun {
    /// Builds the ledger from raw outcome counts and verified-response
    /// latencies (seconds).
    #[allow(clippy::too_many_arguments)]
    pub fn from_outcomes(
        label: String,
        n_replicas: usize,
        n_clients: usize,
        target_qps: f64,
        requests: u64,
        served: u64,
        degraded: u64,
        shed: u64,
        failed: u64,
        incorrect: u64,
        latencies_s: &[f64],
        mut versions_seen: Vec<u64>,
        wall_s: f64,
    ) -> Self {
        versions_seen.sort_unstable();
        versions_seen.dedup();
        let verified = served + degraded;
        let non_shed = requests.saturating_sub(shed).max(1);
        let wall = wall_s.max(1e-9);
        AvailRun {
            label,
            n_replicas,
            n_clients,
            target_qps,
            requests,
            served,
            degraded,
            shed,
            failed,
            failed_over: 0,
            hedges: 0,
            retries: 0,
            recoveries: 0,
            duplicates_suppressed: 0,
            incorrect,
            availability: verified as f64 / non_shed as f64,
            goodput_rps: verified as f64 / wall,
            versions_seen,
            wall_s,
            p50_ms: percentile(latencies_s, 0.50) * 1e3,
            p99_ms: percentile(latencies_s, 0.99) * 1e3,
            p999_ms: percentile(latencies_s, 0.999) * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avail_run_aggregates() {
        let run = AvailRun::from_outcomes(
            "chaos".into(),
            3,
            2,
            500.0,
            100,
            90,
            6,
            2,
            2,
            0,
            &[0.001, 0.002, 0.003],
            vec![2, 1],
            2.0,
        );
        assert_eq!(run.versions_seen, vec![1, 2]);
        assert_eq!(run.incorrect, 0);
        assert!((run.availability - 96.0 / 98.0).abs() < 1e-12);
        assert_eq!(run.goodput_rps, 48.0);
        assert!(run.p99_ms >= run.p50_ms);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 0.999), 100.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn serve_run_aggregates() {
        let lat = vec![0.001, 0.002, 0.003, 0.004];
        let run = ServeRun::from_latencies(
            "per-row".into(),
            8,
            100,
            2,
            1000.0,
            &lat,
            0,
            32,
            1,
            vec![2, 1, 2],
            2.0,
        );
        assert_eq!(run.requests, 4);
        assert_eq!(run.versions_seen, vec![1, 2]);
        assert_eq!(run.throughput_rps, 2.0);
        assert_eq!(run.rows_per_sec, 16.0);
        assert_eq!(run.p50_ms, 2.0);
        assert!(run.p99_ms >= run.p50_ms);
    }

    #[test]
    fn clock_is_monotone() {
        let clock = Clock::new();
        let a = clock.elapsed_s();
        let b = clock.elapsed_s();
        assert!(b >= a && a >= 0.0);
    }
}
