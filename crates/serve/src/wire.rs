//! Wire framing for the serving protocol.
//!
//! Three frame kinds flow over the `gbdt-cluster` fabric, each on its own
//! registered tag (`gbdt_cluster::comm::protocol::SERVE_*`): prediction
//! requests (client → server), prediction responses / publish acks
//! (server → client), and model publishes (trainer → server, carrying a
//! [`GbdtModel::encode_bytes`] payload). All fields are little-endian;
//! decoding returns `Err` on any framing violation rather than panicking —
//! a malformed request must never take the server down.
//!
//! [`GbdtModel::encode_bytes`]: gbdt_core::model::GbdtModel::encode_bytes

/// Outcome class of a [`PredictResponse`]. `Ok` responses carry scores;
/// the rest carry an empty score vector and explain why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReplyStatus {
    /// Scored (fully, or as a degraded prefix when `trees_scored > 0`).
    Ok = 0,
    /// Load-shed: every replica's inflight queue was at capacity.
    Shed = 1,
    /// The retry/hedge budget ran out without a replica answering.
    Failed = 2,
    /// The request frame could not be decoded.
    Malformed = 3,
}

impl ReplyStatus {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::Shed),
            2 => Ok(ReplyStatus::Failed),
            3 => Ok(ReplyStatus::Malformed),
            other => Err(format!("unknown reply status {other}")),
        }
    }
}

/// A batch of dense rows to score. `NaN` cells mean *missing*.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Client-chosen id echoed in the response.
    pub req_id: u64,
    /// Row width (must match the served model).
    pub n_features: u32,
    /// Degraded-mode tree budget: 0 scores the full ensemble, `k > 0`
    /// scores only the first `k` trees per output (set by the router when
    /// a replica is past its high-water mark, never by clients).
    pub max_trees: u32,
    /// Row-major cells, `n_features` per row.
    pub rows: Vec<f32>,
}

impl PredictRequest {
    /// Rows in the batch.
    pub fn n_rows(&self) -> usize {
        if self.n_features == 0 {
            0
        } else {
            self.rows.len() / self.n_features as usize
        }
    }

    /// Encodes: `req_id · n_rows · n_features · max_trees · f32 cells`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.rows.len() * 4);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&(self.n_rows() as u32).to_le_bytes());
        out.extend_from_slice(&self.n_features.to_le_bytes());
        out.extend_from_slice(&self.max_trees.to_le_bytes());
        for v in &self.rows {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Cursor { bytes, pos: 0 };
        let req_id = r.u64()?;
        let n_rows = r.u32()? as usize;
        let n_features = r.u32()?;
        let max_trees = r.u32()?;
        let n_cells = n_rows
            .checked_mul(n_features as usize)
            .ok_or_else(|| "request shape overflows".to_string())?;
        let mut rows = Vec::with_capacity(n_cells.min(1 << 24));
        for _ in 0..n_cells {
            rows.push(r.f32()?);
        }
        r.finish()?;
        Ok(PredictRequest { req_id, n_features, max_trees, rows })
    }
}

/// Raw scores for one request, stamped with the model version that
/// produced them (the hot-swap tests assert versions are never torn).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// Echo of [`PredictRequest::req_id`].
    pub req_id: u64,
    /// Version of the compiled ensemble that scored the batch.
    pub version: u64,
    /// How the request fared; scores are only present for [`ReplyStatus::Ok`].
    pub status: ReplyStatus,
    /// Trees scored per output: 0 means the full ensemble, `k > 0` means a
    /// degraded `k`-tree prefix. Together with `version` this names the
    /// exact deterministic function that produced `scores`.
    pub trees_scored: u32,
    /// Scores per row (C).
    pub n_outputs: u32,
    /// Row-major raw scores.
    pub scores: Vec<f64>,
}

impl PredictResponse {
    /// A scoreless reply carrying only an outcome (shed / failed / malformed).
    pub fn refusal(req_id: u64, status: ReplyStatus) -> Self {
        PredictResponse { req_id, version: 0, status, trees_scored: 0, n_outputs: 0, scores: Vec::new() }
    }

    /// Encodes: `req_id · version · status · trees_scored · n_outputs ·
    /// n_scores · f64 scores`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33 + self.scores.len() * 8);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.status as u8);
        out.extend_from_slice(&self.trees_scored.to_le_bytes());
        out.extend_from_slice(&self.n_outputs.to_le_bytes());
        out.extend_from_slice(&(self.scores.len() as u32).to_le_bytes());
        for v in &self.scores {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes [`Self::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Cursor { bytes, pos: 0 };
        let req_id = r.u64()?;
        let version = r.u64()?;
        let status = ReplyStatus::from_u8(r.u8()?)?;
        let trees_scored = r.u32()?;
        let n_outputs = r.u32()?;
        let n_scores = r.u32()? as usize;
        let mut scores = Vec::with_capacity(n_scores.min(1 << 24));
        for _ in 0..n_scores {
            scores.push(r.f64()?);
        }
        r.finish()?;
        Ok(PredictResponse { req_id, version, status, trees_scored, n_outputs, scores })
    }
}

/// Acknowledgement of a model publish: the version now being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishAck {
    /// The freshly published version.
    pub version: u64,
}

impl PublishAck {
    /// Encodes the 8-byte version.
    pub fn encode(&self) -> Vec<u8> {
        self.version.to_le_bytes().to_vec()
    }

    /// Decodes [`Self::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let arr: [u8; 8] =
            bytes.try_into().map_err(|_| format!("publish ack is {} bytes, want 8", bytes.len()))?;
        Ok(PublishAck { version: u64::from_le_bytes(arr) })
    }
}

/// A model publish as the router re-broadcasts it to replicas: the router
/// assigns the version so every replica in the group serves globally
/// consistent version numbers even if one missed an earlier publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishFrame {
    /// Router-assigned version for this model.
    pub version: u64,
    /// [`GbdtModel::encode_bytes`] payload.
    ///
    /// [`GbdtModel::encode_bytes`]: gbdt_core::model::GbdtModel::encode_bytes
    pub model_bytes: Vec<u8>,
}

impl PublishFrame {
    /// Encodes: `version · n_bytes · model bytes`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.model_bytes.len());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.model_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.model_bytes);
        out
    }

    /// Decodes [`Self::encode`] output.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Cursor { bytes, pos: 0 };
        let version = r.u64()?;
        let n_bytes = r.u64()? as usize;
        let model_bytes = r.take(n_bytes)?.to_vec();
        r.finish()?;
        Ok(PublishFrame { version, model_bytes })
    }
}

/// Bounds-checked little-endian cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated serve frame at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(|_| "u32".to_string())?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().map_err(|_| "u64".to_string())?))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().map_err(|_| "f32".to_string())?))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().map_err(|_| "f64".to_string())?))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in serve frame", self.bytes.len() - self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_including_nan() {
        let req = PredictRequest {
            req_id: 42,
            n_features: 3,
            max_trees: 5,
            rows: vec![1.0, f32::NAN, -2.5, 0.0, 7.0, f32::NAN],
        };
        assert_eq!(req.n_rows(), 2);
        let back = PredictRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.req_id, 42);
        assert_eq!(back.n_features, 3);
        assert_eq!(back.max_trees, 5);
        // NaN != NaN, so compare bit patterns.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.rows), bits(&req.rows));
    }

    #[test]
    fn response_and_ack_round_trip() {
        let resp = PredictResponse {
            req_id: 7,
            version: 3,
            status: ReplyStatus::Ok,
            trees_scored: 12,
            n_outputs: 2,
            scores: vec![0.25, -1.5, 3.75, 0.0],
        };
        assert_eq!(PredictResponse::decode(&resp.encode()).unwrap(), resp);
        let shed = PredictResponse::refusal(9, ReplyStatus::Shed);
        let back = PredictResponse::decode(&shed.encode()).unwrap();
        assert_eq!(back.status, ReplyStatus::Shed);
        assert!(back.scores.is_empty());
        let ack = PublishAck { version: 11 };
        assert_eq!(PublishAck::decode(&ack.encode()).unwrap(), ack);
        let publish = PublishFrame { version: 4, model_bytes: vec![1, 2, 3, 4, 5] };
        assert_eq!(PublishFrame::decode(&publish.encode()).unwrap(), publish);
    }

    #[test]
    fn malformed_frames_error() {
        let req = PredictRequest { req_id: 1, n_features: 2, max_trees: 0, rows: vec![1.0, 2.0] };
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(PredictRequest::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert!(PredictRequest::decode(&long).is_err());
        assert!(PublishAck::decode(&[1, 2, 3]).is_err());
        // A shape whose cell count overflows must be rejected up front.
        let mut evil = Vec::new();
        evil.extend_from_slice(&1u64.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        assert!(PredictRequest::decode(&evil).is_err());
        // Unknown reply status byte is rejected.
        let resp = PredictResponse::refusal(1, ReplyStatus::Ok);
        let mut tampered = resp.encode();
        tampered[16] = 250;
        assert!(PredictResponse::decode(&tampered).is_err());
        // Truncated responses and publishes are rejected at every prefix.
        let full = PredictResponse {
            req_id: 2,
            version: 1,
            status: ReplyStatus::Ok,
            trees_scored: 0,
            n_outputs: 1,
            scores: vec![0.5],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(PredictResponse::decode(&full[..cut]).is_err(), "cut={cut}");
        }
        let pf = PublishFrame { version: 1, model_bytes: vec![9, 9] }.encode();
        for cut in 0..pf.len() {
            assert!(PublishFrame::decode(&pf[..cut]).is_err(), "cut={cut}");
        }
    }
}
