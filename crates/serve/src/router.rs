//! The serving-plane router: failover, hedging, shedding, degradation.
//!
//! Rank [`ROUTER_RANK`] fronts a replica group. Clients talk only to it;
//! it spreads their requests over the healthy replicas and owns every
//! reliability decision:
//!
//! * **Failover** — each forwarded request carries a per-attempt
//!   deadline; an expired attempt strikes the replica it was on and the
//!   request is retried on the next healthy replica, up to
//!   [`RouterConfig::retry_budget`] attempts before the client gets a
//!   typed `Failed` response. Enough strikes (or a send failure, or a
//!   missed heartbeat) mark a replica `Down`; a heartbeat pong or a
//!   `SERVE_RECOVER_TAG` announcement brings it back.
//! * **Hedging** — an outstanding first attempt older than a
//!   p99-derived delay (never below [`RouterConfig::hedge_floor`]) gets
//!   one backup copy on a different replica. Whichever reply lands first
//!   wins; the loser is suppressed by its router-assigned request id, so
//!   a hedge can never double-count.
//! * **Shedding** — per-replica inflight counters are the bounded queue;
//!   when every healthy replica is at [`RouterConfig::queue_cap`] the
//!   request is refused with a typed `Shed` response instead of being
//!   buffered without bound.
//! * **Degradation** — past [`RouterConfig::high_water`] inflight, the
//!   forwarded request carries a tree-prefix budget
//!   ([`RouterConfig::degrade_trees`]); the replica's response is
//!   stamped `(version, trees_scored)` so degraded scores stay exactly
//!   verifiable — a deterministic prefix, not a best-effort guess.
//! * **Versioning** — publishes flow through the router, which assigns
//!   the version number and re-broadcasts the model to every healthy
//!   replica (recovering or lagging replicas are resynced on their next
//!   recover/pong), so a version stamp means the same model everywhere.
//!
//! All wall-clock reads go through [`crate::stats::Clock`] — the scoring
//! path stays clock-free and the lint allowlist stays narrow.

use crate::replica::ROUTER_RANK;
use crate::stats::{percentile, Clock};
use crate::wire::{PredictRequest, PredictResponse, PublishAck, PublishFrame, ReplyStatus};
use bytes::Bytes;
use gbdt_cluster::comm::protocol::{
    SERVE_ACK_TAG, SERVE_HEALTH_PING_TAG, SERVE_HEALTH_PONG_TAG, SERVE_PUBLISH_TAG,
    SERVE_RECOVER_TAG, SERVE_REPLY_TAG, SERVE_REQUEST_TAG, SERVE_RESPONSE_TAG,
    SERVE_ROUTE_TAG, SERVE_STOP_TAG,
};
use gbdt_cluster::{Comm, CommError};
use std::collections::HashMap;
use std::time::Duration;

/// Knobs of the routing policy.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Serving replicas (ranks `1..=n_replicas`; clients follow).
    pub n_replicas: usize,
    /// Per-replica inflight bound; past it on every healthy replica the
    /// request is shed.
    pub queue_cap: usize,
    /// Inflight level at which forwarded requests switch to the degraded
    /// tree-prefix budget (`0` disables degraded mode).
    pub high_water: usize,
    /// Trees scored per output in degraded mode.
    pub degrade_trees: u32,
    /// Per-attempt deadline before a request fails over.
    pub deadline: Duration,
    /// Max scoring attempts per request (first + retries).
    pub retry_budget: usize,
    /// Hedge delay floor; the actual delay is `max(floor, p99)` over a
    /// sliding window of completed latencies.
    pub hedge_floor: Duration,
    /// Deadline strikes that mark a replica `Down`.
    pub strike_limit: u32,
    /// Heartbeat ping period.
    pub ping_interval: Duration,
    /// `Up` replicas missing pongs for this long go `Down`.
    pub pong_timeout: Duration,
    /// Event-loop receive patience (the sweep tick).
    pub tick: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            n_replicas: 3,
            queue_cap: 32,
            high_water: 24,
            degrade_trees: 0,
            deadline: Duration::from_millis(120),
            retry_budget: 3,
            hedge_floor: Duration::from_millis(25),
            strike_limit: 2,
            ping_interval: Duration::from_millis(40),
            pong_timeout: Duration::from_millis(400),
            tick: Duration::from_millis(2),
        }
    }
}

/// What one routing session did — the availability ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests answered with scores (full or degraded).
    pub served: u64,
    /// Requests answered from a degraded tree-prefix.
    pub degraded: u64,
    /// Requests refused with `Shed` (all queues at capacity).
    pub shed: u64,
    /// Requests that exhausted the retry budget and failed.
    pub failed: u64,
    /// Requests that completed only after at least one failover retry.
    pub failed_over: u64,
    /// Failover retries issued.
    pub retries: u64,
    /// Hedged backup requests issued.
    pub hedges: u64,
    /// Replica replies discarded because their request was already
    /// answered (hedge losers, post-failover stragglers, dup frames).
    pub duplicates_suppressed: u64,
    /// Publishes accepted and broadcast.
    pub publishes: u64,
    /// Replica recoveries observed (`SERVE_RECOVER_TAG` announcements).
    pub recoveries: u64,
    /// Replicas marked `Down` (strikes, send failures, missed pongs).
    pub downs: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Responses/acks that could not be delivered to their client.
    pub response_send_failures: u64,
    /// Version current when the session ended.
    pub last_version: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    Down,
}

struct Replica {
    rank: usize,
    health: Health,
    inflight: usize,
    strikes: u32,
    last_pong_s: f64,
    /// Version last reported by a pong/ack (for lag-resync decisions).
    version: u64,
}

struct Outstanding {
    client: usize,
    client_req_id: u64,
    req: PredictRequest,
    /// Open-loop latency anchor: when the client frame reached us.
    arrived_s: f64,
    /// Per-attempt deadline anchor.
    sent_s: f64,
    attempts: usize,
    hedged: bool,
    /// Replicas currently charged an inflight slot for this request.
    charged: Vec<usize>,
    /// Replicas that have ever been tried (preferred-avoid set).
    tried: Vec<usize>,
}

/// Sliding window of completed-request latencies feeding the hedge delay.
const LATENCY_WINDOW: usize = 256;

struct Router<'a> {
    comm: &'a Comm,
    cfg: RouterConfig,
    clock: Clock,
    replicas: Vec<Replica>,
    outstanding: HashMap<u64, Outstanding>,
    next_rid: u64,
    version: u64,
    model_bytes: Vec<u8>,
    latencies_s: Vec<f64>,
    last_ping_s: f64,
    stats: RouterStats,
}

impl<'a> Router<'a> {
    fn new(comm: &'a Comm, cfg: RouterConfig, model_bytes: Vec<u8>, clock: Clock) -> Self {
        let replicas = (1..=cfg.n_replicas)
            .map(|rank| Replica {
                rank,
                health: Health::Up,
                inflight: 0,
                strikes: 0,
                last_pong_s: clock.elapsed_s(),
                version: 1,
            })
            .collect();
        Router {
            comm,
            cfg,
            clock,
            replicas,
            outstanding: HashMap::new(),
            next_rid: 1,
            version: 1,
            model_bytes,
            latencies_s: Vec::new(),
            last_ping_s: 0.0,
            stats: RouterStats::default(),
        }
    }

    fn replica_mut(&mut self, rank: usize) -> Option<&mut Replica> {
        self.replicas.iter_mut().find(|r| r.rank == rank)
    }

    fn mark_down(&mut self, rank: usize) {
        if let Some(r) = self.replica_mut(rank) {
            if r.health == Health::Up {
                r.health = Health::Down;
                r.inflight = 0;
                self.stats.downs += 1;
            }
        }
    }

    fn mark_up(&mut self, rank: usize, now_s: f64) {
        if let Some(r) = self.replica_mut(rank) {
            r.health = Health::Up;
            r.strikes = 0;
            r.last_pong_s = now_s;
        }
    }

    /// Healthy replica with the most queue headroom, excluding `avoid`
    /// when possible (retries prefer a replica that hasn't failed them).
    fn pick_replica(&self, avoid: &[usize]) -> Option<usize> {
        let candidate = |skip_avoided: bool| {
            self.replicas
                .iter()
                .filter(|r| r.health == Health::Up && r.inflight < self.cfg.queue_cap)
                .filter(|r| !skip_avoided || !avoid.contains(&r.rank))
                .min_by_key(|r| (r.inflight, r.rank))
                .map(|r| r.rank)
        };
        candidate(true).or_else(|| candidate(false))
    }

    /// Current hedge delay: p99 of the completed-latency window, floored.
    fn hedge_delay_s(&self) -> f64 {
        let floor = self.cfg.hedge_floor.as_secs_f64();
        if self.latencies_s.len() < 16 {
            return floor;
        }
        percentile(&self.latencies_s, 0.99).max(floor)
    }

    fn record_latency(&mut self, sample_s: f64) {
        if self.latencies_s.len() >= LATENCY_WINDOW {
            self.latencies_s.remove(0);
        }
        self.latencies_s.push(sample_s);
    }

    /// Sends one attempt of `rid` to `replica`, applying the degraded
    /// budget if the replica is past the high-water mark. Returns `false`
    /// (and downs the replica) if the fabric rejected the send.
    fn forward(&mut self, rid: u64, replica: usize) -> bool {
        let cfg = self.cfg;
        let Some(out) = self.outstanding.get_mut(&rid) else { return false };
        let degraded = cfg.degrade_trees > 0
            && cfg.high_water > 0
            && self
                .replicas
                .iter()
                .find(|r| r.rank == replica)
                .is_some_and(|r| r.inflight >= cfg.high_water);
        let mut req = out.req.clone();
        req.req_id = rid;
        req.max_trees = if degraded { cfg.degrade_trees } else { 0 };
        if !out.tried.contains(&replica) {
            out.tried.push(replica);
        }
        out.charged.push(replica);
        match self.comm.send(replica, SERVE_ROUTE_TAG, Bytes::from(req.encode())) {
            Ok(()) => {
                if let Some(r) = self.replica_mut(replica) {
                    r.inflight += 1;
                }
                true
            }
            Err(_) => {
                if let Some(out) = self.outstanding.get_mut(&rid) {
                    out.charged.retain(|&r| r != replica);
                }
                self.mark_down(replica);
                false
            }
        }
    }

    /// Releases the inflight slots a completed/expired request holds.
    fn release_charges(&mut self, charged: &[usize]) {
        for &rank in charged {
            if let Some(r) = self.replica_mut(rank) {
                r.inflight = r.inflight.saturating_sub(1);
            }
        }
    }

    fn respond(&mut self, client: usize, response: &PredictResponse) {
        if self.comm.send(client, SERVE_RESPONSE_TAG, Bytes::from(response.encode())).is_err()
        {
            self.stats.response_send_failures += 1;
        }
    }

    /// A fresh client request: admit, shed, or fail it.
    fn handle_request(&mut self, client: usize, payload: &[u8], now_s: f64) {
        let req = match PredictRequest::decode(payload) {
            Ok(req) => req,
            Err(_) => {
                self.stats.malformed += 1;
                self.respond(client, &PredictResponse::refusal(0, ReplyStatus::Malformed));
                return;
            }
        };
        let rid = self.next_rid;
        self.next_rid += 1;
        let client_req_id = req.req_id;
        self.outstanding.insert(
            rid,
            Outstanding {
                client,
                client_req_id,
                req,
                arrived_s: now_s,
                sent_s: now_s,
                attempts: 1,
                hedged: false,
                charged: Vec::new(),
                tried: Vec::new(),
            },
        );
        // First attempt; walk the healthy set if sends keep failing.
        while let Some(replica) = self.pick_replica(&[]) {
            if self.forward(rid, replica) {
                return;
            }
        }
        // Nowhere to put it: shed (queues full) or fail (no replica Up).
        self.outstanding.remove(&rid);
        let any_up = self.replicas.iter().any(|r| r.health == Health::Up);
        let status = if any_up { ReplyStatus::Shed } else { ReplyStatus::Failed };
        if status == ReplyStatus::Shed {
            self.stats.shed += 1;
        } else {
            self.stats.failed += 1;
        }
        self.respond(client, &PredictResponse::refusal(client_req_id, status));
    }

    /// A replica's reply: first one wins, stragglers are suppressed.
    fn handle_reply(&mut self, replica: usize, payload: &[u8], now_s: f64) {
        let mut resp = match PredictResponse::decode(payload) {
            Ok(resp) => resp,
            Err(_) => {
                self.stats.malformed += 1;
                return;
            }
        };
        let rid = resp.req_id;
        let Some(out) = self.outstanding.remove(&rid) else {
            self.stats.duplicates_suppressed += 1;
            return;
        };
        self.release_charges(&out.charged);
        if let Some(r) = self.replica_mut(replica) {
            r.strikes = 0;
        }
        self.record_latency(now_s - out.sent_s);
        self.stats.served += 1;
        if resp.trees_scored > 0 {
            self.stats.degraded += 1;
        }
        if out.attempts > 1 {
            self.stats.failed_over += 1;
        }
        resp.req_id = out.client_req_id;
        let _ = out.arrived_s; // reserved for queueing-delay accounting
        self.respond(out.client, &resp);
    }

    /// A publish from a trainer/client: version it, broadcast, ack.
    fn handle_publish(&mut self, publisher: usize, payload: Vec<u8>) {
        if gbdt_core::model::GbdtModel::decode_bytes(&payload).is_err() {
            self.stats.malformed += 1;
            self.respond_ack(publisher, 0);
            return;
        }
        self.version += 1;
        self.model_bytes = payload;
        self.stats.publishes += 1;
        let frame =
            PublishFrame { version: self.version, model_bytes: self.model_bytes.clone() }
                .encode();
        let up: Vec<usize> = self
            .replicas
            .iter()
            .filter(|r| r.health == Health::Up)
            .map(|r| r.rank)
            .collect();
        for rank in up {
            if self.comm.send(rank, SERVE_PUBLISH_TAG, Bytes::from(frame.clone())).is_err() {
                self.mark_down(rank);
            }
        }
        self.respond_ack(publisher, self.version);
    }

    fn respond_ack(&mut self, publisher: usize, version: u64) {
        let ack = PublishAck { version }.encode();
        if self.comm.send(publisher, SERVE_RESPONSE_TAG, Bytes::from(ack)).is_err() {
            self.stats.response_send_failures += 1;
        }
    }

    /// Resyncs `replica` to the current model (recover or lagging pong).
    fn resync(&mut self, replica: usize) {
        let frame =
            PublishFrame { version: self.version, model_bytes: self.model_bytes.clone() }
                .encode();
        if self.comm.send(replica, SERVE_PUBLISH_TAG, Bytes::from(frame)).is_err() {
            self.mark_down(replica);
        }
    }

    /// Deadline, hedge, and heartbeat bookkeeping; runs every tick.
    fn sweep(&mut self, now_s: f64) {
        // Expired attempts: strike their replicas, then retry or fail.
        let deadline_s = self.cfg.deadline.as_secs_f64();
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, out)| now_s - out.sent_s >= deadline_s)
            .map(|(&rid, _)| rid)
            .collect();
        for rid in expired {
            let Some(mut out) = self.outstanding.remove(&rid) else { continue };
            let charged = std::mem::take(&mut out.charged);
            self.release_charges(&charged);
            for rank in charged {
                if let Some(r) = self.replica_mut(rank) {
                    r.strikes += 1;
                    if r.strikes >= self.cfg.strike_limit {
                        self.mark_down(rank);
                    }
                }
            }
            if out.attempts >= self.cfg.retry_budget {
                self.stats.failed += 1;
                let refusal =
                    PredictResponse::refusal(out.client_req_id, ReplyStatus::Failed);
                self.respond(out.client, &refusal);
                continue;
            }
            out.attempts += 1;
            out.sent_s = now_s;
            self.stats.retries += 1;
            let avoid = out.tried.clone();
            let (client, client_req_id) = (out.client, out.client_req_id);
            self.outstanding.insert(rid, out);
            let mut forwarded = false;
            while let Some(replica) = self.pick_replica(&avoid) {
                if self.forward(rid, replica) {
                    forwarded = true;
                    break;
                }
            }
            if !forwarded {
                self.outstanding.remove(&rid);
                self.stats.failed += 1;
                self.respond(client, &PredictResponse::refusal(client_req_id, ReplyStatus::Failed));
            }
        }

        // Hedges: one backup for slow first attempts.
        let hedge_delay_s = self.hedge_delay_s();
        let hedgeable: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, out)| {
                !out.hedged
                    && now_s - out.sent_s >= hedge_delay_s
                    && now_s - out.sent_s < deadline_s
            })
            .map(|(&rid, _)| rid)
            .collect();
        for rid in hedgeable {
            let avoid = match self.outstanding.get_mut(&rid) {
                Some(out) => {
                    out.hedged = true;
                    out.tried.clone()
                }
                None => continue,
            };
            // Only hedge onto a *different* replica; a second copy on the
            // same struggling one buys nothing.
            if let Some(replica) = self.pick_replica(&avoid) {
                if !avoid.contains(&replica) && self.forward(rid, replica) {
                    self.stats.hedges += 1;
                }
            }
        }

        // Heartbeats.
        if now_s - self.last_ping_s >= self.cfg.ping_interval.as_secs_f64() {
            self.last_ping_s = now_s;
            let ranks: Vec<usize> = self.replicas.iter().map(|r| r.rank).collect();
            for rank in ranks {
                if self.comm.send(rank, SERVE_HEALTH_PING_TAG, Bytes::new()).is_err() {
                    self.mark_down(rank);
                }
            }
        }
        let pong_timeout_s = self.cfg.pong_timeout.as_secs_f64();
        let stale: Vec<usize> = self
            .replicas
            .iter()
            .filter(|r| r.health == Health::Up && now_s - r.last_pong_s > pong_timeout_s)
            .map(|r| r.rank)
            .collect();
        for rank in stale {
            self.mark_down(rank);
        }
    }

    fn run(&mut self, n_clients: usize) -> Result<RouterStats, CommError> {
        let tags = [
            SERVE_REQUEST_TAG,
            SERVE_REPLY_TAG,
            SERVE_PUBLISH_TAG,
            SERVE_ACK_TAG,
            SERVE_HEALTH_PONG_TAG,
            SERVE_RECOVER_TAG,
            SERVE_STOP_TAG,
        ];
        self.comm.set_recv_patience(self.cfg.tick);
        let first_client = self.cfg.n_replicas + 1;
        let mut stops = 0usize;
        while stops < n_clients || !self.outstanding.is_empty() {
            let now_s = self.clock.elapsed_s();
            match self.comm.recv_any(&tags) {
                Ok((from, tag, payload)) => match tag {
                    SERVE_STOP_TAG => stops += 1,
                    SERVE_REQUEST_TAG if from >= first_client => {
                        self.handle_request(from, &payload, now_s);
                    }
                    SERVE_REPLY_TAG if from >= 1 && from < first_client => {
                        self.handle_reply(from, &payload, now_s);
                    }
                    SERVE_PUBLISH_TAG if from >= first_client => {
                        self.handle_publish(from, payload.to_vec());
                    }
                    SERVE_ACK_TAG if from >= 1 && from < first_client => {
                        match payload.as_ref().try_into().map(u64::from_le_bytes) {
                            Ok(version) => {
                                if let Some(r) = self.replica_mut(from) {
                                    r.version = version;
                                }
                            }
                            Err(_) => self.stats.malformed += 1,
                        }
                    }
                    SERVE_HEALTH_PONG_TAG if from >= 1 && from < first_client => {
                        self.mark_up(from, now_s);
                        match payload.as_ref().try_into().map(u64::from_le_bytes) {
                            Ok(version) => {
                                if let Some(r) = self.replica_mut(from) {
                                    r.version = version;
                                }
                                if version < self.version {
                                    // Lagging (slept through a publish while
                                    // marked Down): bring it forward.
                                    self.resync(from);
                                }
                            }
                            Err(_) => self.stats.malformed += 1,
                        }
                    }
                    SERVE_RECOVER_TAG if from >= 1 && from < first_client => {
                        self.stats.recoveries += 1;
                        if let Some(r) = self.replica_mut(from) {
                            r.inflight = 0;
                        }
                        self.mark_up(from, now_s);
                        self.resync(from);
                    }
                    _ => self.stats.malformed += 1,
                },
                Err(CommError::Timeout { .. }) => {}
                Err(CommError::PendingOverflow { .. }) => {
                    // Overload shows up as shed requests, not a dead router:
                    // the bound already counted the overflow in comm stats.
                }
                Err(e) => return Err(e),
            }
            self.sweep(self.clock.elapsed_s());
        }
        // Session over: stop every replica.
        for rank in 1..=self.cfg.n_replicas {
            let _ = self.comm.send(rank, SERVE_STOP_TAG, Bytes::new());
        }
        self.stats.last_version = self.version;
        Ok(self.stats)
    }
}

/// Runs the routing event loop on this rank until every one of
/// `n_clients` peers has sent a `SERVE_STOP_TAG` frame and no request is
/// outstanding, then stops the replica group.
///
/// `model_bytes` is the [`GbdtModel::encode_bytes`] payload of the
/// version-1 model every replica was seated with (kept for resyncing
/// recovering replicas).
///
/// [`GbdtModel::encode_bytes`]: gbdt_core::model::GbdtModel::encode_bytes
pub fn run_router(
    comm: &Comm,
    cfg: &RouterConfig,
    model_bytes: Vec<u8>,
    n_clients: usize,
) -> Result<RouterStats, CommError> {
    assert_eq!(comm.rank(), ROUTER_RANK, "router must run on rank 0");
    assert!(cfg.n_replicas >= 1, "need at least one replica");
    assert!(cfg.queue_cap >= 1, "queue_cap must be positive");
    assert!(cfg.retry_budget >= 1, "retry_budget counts the first attempt");
    let clock = Clock::new();
    Router::new(comm, *cfg, model_bytes, clock).run(n_clients)
}
