//! The serving request loop and atomic model hot-swap.
//!
//! A server rank multiplexes three tag streams off the cluster fabric
//! with [`gbdt_cluster::Comm::recv_any`]: prediction requests, model
//! publishes, and per-client stops. The served model lives in a
//! [`ModelSlot`] — publishing compiles the incoming
//! [`GbdtModel::encode_bytes`] payload *outside* the lock, then swaps an
//! `Arc` under a brief write lock. In-flight scoring holds its own `Arc`
//! clone, so a swap never tears a batch: every response is stamped with
//! the version that actually scored it, and concurrent traffic observes
//! only whole versions (pinned by the hot-swap tests).
//!
//! [`GbdtModel::encode_bytes`]: gbdt_core::model::GbdtModel::encode_bytes

use crate::compile::{compile, CompiledEnsemble};
use crate::exec::{ExecStrategy, Layout, Strategy};
use crate::pool;
use crate::wire::{PredictRequest, PredictResponse, PublishAck, ReplyStatus};
use bytes::Bytes;
use gbdt_cluster::comm::protocol::{
    SERVE_PUBLISH_TAG, SERVE_REQUEST_TAG, SERVE_RESPONSE_TAG, SERVE_STOP_TAG,
};
use gbdt_cluster::{Comm, CommError};
use gbdt_core::model::GbdtModel;
use std::sync::{Arc, RwLock};

/// The atomically swappable published model.
///
/// Readers take an `Arc` snapshot ([`ModelSlot::load`]) and score against
/// it for as long as they like; [`ModelSlot::publish`] swaps the slot for
/// new traffic without invalidating snapshots already handed out. The
/// write lock is held only for the pointer swap — compilation happens
/// before acquiring it.
#[derive(Debug)]
pub struct ModelSlot {
    current: RwLock<Arc<CompiledEnsemble>>,
}

/// A poisoned slot lock only means another thread panicked mid-*swap* of
/// a pointer — the `Arc` inside is always a whole, valid ensemble, so
/// serving continues with it rather than cascading the panic.
fn read_slot(lock: &RwLock<Arc<CompiledEnsemble>>) -> Arc<CompiledEnsemble> {
    match lock.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

impl ModelSlot {
    /// Compiles `model` as version 1 and seats it in the slot.
    pub fn new(model: &GbdtModel) -> Result<Self, String> {
        Self::new_versioned(model, 1)
    }

    /// Compiles `model` under an externally assigned version (replicated
    /// serving: the router owns version numbers so every replica stamps
    /// the same version for the same model).
    pub fn new_versioned(model: &GbdtModel, version: u64) -> Result<Self, String> {
        Ok(ModelSlot { current: RwLock::new(Arc::new(compile(model, version)?)) })
    }

    /// Snapshot of the currently served ensemble.
    pub fn load(&self) -> Arc<CompiledEnsemble> {
        read_slot(&self.current)
    }

    /// Version of the currently served ensemble.
    pub fn version(&self) -> u64 {
        self.load().version
    }

    /// Compiles `model` as the next version and atomically swaps it in;
    /// returns the new version. On a compile error the slot is untouched.
    pub fn publish(&self, model: &GbdtModel) -> Result<u64, String> {
        self.publish_versioned(model, self.version() + 1)
    }

    /// Compiles `model` under an externally assigned version and swaps it
    /// in. A version at or below the currently served one is stale (a
    /// delayed or duplicated publish frame) and is rejected without
    /// touching the slot, so replicas can never move backwards.
    pub fn publish_versioned(&self, model: &GbdtModel, version: u64) -> Result<u64, String> {
        let current = self.version();
        if version <= current {
            return Err(format!("stale publish: version {version} ≤ served {current}"));
        }
        let compiled = Arc::new(compile(model, version)?);
        let mut guard = match self.current.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Re-check under the lock: a racing publish may have won.
        if version <= guard.version {
            return Err(format!("stale publish: version {version} ≤ served {}", guard.version));
        }
        *guard = compiled;
        Ok(version)
    }
}

/// How a serving rank scores: strategy × node layout × thread budget.
///
/// This is the one knob bundle every serving entry point (the
/// single-rank [`serve`] loop, replicas, the traffic and availability
/// harnesses, `--score-threads` on the bench binaries) constructs its
/// executor from, via [`ServeConfig::executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Batch execution strategy.
    pub strategy: Strategy,
    /// Compiled node layout (flat 16-byte or quantized 8-byte).
    pub layout: Layout,
    /// Scoring threads per request batch: 1 = serial (the default),
    /// 0 = one per available core, N = exactly N scoped workers.
    pub score_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { strategy: Strategy::PerRow, layout: Layout::Flat, score_threads: 1 }
    }
}

impl ServeConfig {
    /// A serial flat-layout config for `strategy` (the pre-parallel
    /// behavior — what `Strategy::executor()` alone used to provide).
    pub fn serial(strategy: Strategy) -> Self {
        ServeConfig { strategy, ..ServeConfig::default() }
    }

    /// Builds the executor this config describes: the strategy over the
    /// chosen layout, wrapped for parallel chunk scoring when
    /// `score_threads` resolves past 1 (see [`crate::pool`]).
    pub fn executor(&self) -> Box<dyn ExecStrategy + Send + Sync> {
        pool::parallel(self.strategy.executor_for(self.layout), self.score_threads)
    }
}

/// Scores one decoded request against an ensemble snapshot, honoring the
/// degraded-mode tree budget (`max_trees = 0` scores the full ensemble).
/// The response stamps `(version, trees_scored)` — the exact deterministic
/// function that produced the scores — or `Malformed` on a shape mismatch.
pub fn score_request(
    ens: &CompiledEnsemble,
    strategy: &dyn ExecStrategy,
    req: &PredictRequest,
) -> PredictResponse {
    if req.n_features as usize != ens.n_features {
        return PredictResponse::refusal(req.req_id, ReplyStatus::Malformed);
    }
    let budget = req.max_trees as usize;
    let (limit, trees_scored) = if budget == 0 || budget >= ens.n_trees() {
        (usize::MAX, 0u32)
    } else {
        (budget, budget as u32)
    };
    let n_rows = req.n_rows();
    let mut scores = vec![0.0f64; n_rows * ens.n_outputs];
    strategy.predict_prefix_into(ens, &req.rows, limit, &mut scores);
    PredictResponse {
        req_id: req.req_id,
        version: ens.version,
        status: ReplyStatus::Ok,
        trees_scored,
        n_outputs: ens.n_outputs as u32,
        scores,
    }
}

/// What one serving session handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Prediction requests answered.
    pub requests: u64,
    /// Rows scored.
    pub rows: u64,
    /// Successful model publishes.
    pub publishes: u64,
    /// Frames that failed to decode or had a mismatched shape (each is
    /// answered with an empty error response so the client never hangs).
    pub malformed: u64,
    /// Version being served when the loop exited.
    pub last_version: u64,
}

/// Runs the serving loop on this rank until every one of `n_clients`
/// peers has sent a [`SERVE_STOP_TAG`] message.
///
/// Requests are scored with `strategy` against the current [`ModelSlot`]
/// snapshot and answered on [`SERVE_RESPONSE_TAG`]; publishes hot-swap
/// the slot and are acked with the new version. Malformed frames get an
/// empty response (`version = 0`) so a buggy client fails fast instead
/// of deadlocking the mesh.
pub fn serve(
    comm: &Comm,
    slot: &ModelSlot,
    strategy: &dyn ExecStrategy,
    n_clients: usize,
) -> Result<ServerStats, CommError> {
    let tags = [SERVE_REQUEST_TAG, SERVE_PUBLISH_TAG, SERVE_STOP_TAG];
    let mut stats = ServerStats::default();
    let mut stops = 0usize;
    while stops < n_clients {
        let (from, tag, payload) = comm.recv_any(&tags)?;
        if tag == SERVE_STOP_TAG {
            stops += 1;
        } else if tag == SERVE_REQUEST_TAG {
            let ens = slot.load();
            let response = match PredictRequest::decode(&payload) {
                Ok(req) => {
                    let response = score_request(&ens, strategy, &req);
                    if response.status == ReplyStatus::Ok {
                        stats.requests += 1;
                        stats.rows += req.n_rows() as u64;
                    } else {
                        stats.malformed += 1;
                    }
                    response
                }
                Err(_) => {
                    stats.malformed += 1;
                    PredictResponse::refusal(0, ReplyStatus::Malformed)
                }
            };
            comm.send(from, SERVE_RESPONSE_TAG, Bytes::from(response.encode()))?;
        } else {
            // SERVE_PUBLISH_TAG
            let ack = match GbdtModel::decode_bytes(&payload)
                .and_then(|model| slot.publish(&model))
            {
                Ok(version) => {
                    stats.publishes += 1;
                    PublishAck { version }
                }
                Err(_) => {
                    stats.malformed += 1;
                    PublishAck { version: 0 }
                }
            };
            comm.send(from, SERVE_RESPONSE_TAG, Bytes::from(ack.encode()))?;
        }
    }
    stats.last_version = slot.version();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PerRow;
    use gbdt_cluster::NetworkCostModel;
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    fn stump_model(leaf_left: f64, leaf_right: f64) -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 2);
        let mut t = Tree::new(2, 1);
        t.set_internal(0, 0, 0, 0.5, true);
        t.set_leaf(1, vec![leaf_left]);
        t.set_leaf(2, vec![leaf_right]);
        m.trees.push(t);
        m
    }

    #[test]
    fn request_publish_stop_session() {
        let mesh = Comm::mesh(2, NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: 1e9 });
        let mut mesh = mesh.into_iter();
        let (server_comm, client_comm) = (mesh.next().unwrap(), mesh.next().unwrap());
        let slot = ModelSlot::new(&stump_model(1.0, -1.0)).unwrap();

        std::thread::scope(|scope| {
            let slot = &slot;
            let server = scope.spawn(move || serve(&server_comm, slot, &PerRow, 1).unwrap());

            let req = PredictRequest {
                req_id: 9,
                n_features: 2,
                max_trees: 0,
                rows: vec![0.0, 0.0, 1.0, 0.0],
            };
            client_comm.send(0, SERVE_REQUEST_TAG, Bytes::from(req.encode())).unwrap();
            let resp =
                PredictResponse::decode(&client_comm.recv(0, SERVE_RESPONSE_TAG).unwrap())
                    .unwrap();
            assert_eq!(resp.req_id, 9);
            assert_eq!(resp.version, 1);
            assert_eq!(resp.scores, vec![1.0, -1.0]);

            // Hot-swap to a model with flipped leaves.
            let v2 = stump_model(5.0, -5.0);
            client_comm.send(0, SERVE_PUBLISH_TAG, Bytes::from(v2.encode_bytes())).unwrap();
            let ack =
                PublishAck::decode(&client_comm.recv(0, SERVE_RESPONSE_TAG).unwrap()).unwrap();
            assert_eq!(ack.version, 2);

            client_comm.send(0, SERVE_REQUEST_TAG, Bytes::from(req.encode())).unwrap();
            let resp =
                PredictResponse::decode(&client_comm.recv(0, SERVE_RESPONSE_TAG).unwrap())
                    .unwrap();
            assert_eq!(resp.version, 2);
            assert_eq!(resp.scores, vec![5.0, -5.0]);

            // Malformed request: server answers an error frame, keeps going.
            client_comm.send(0, SERVE_REQUEST_TAG, Bytes::from(vec![1, 2, 3])).unwrap();
            let err =
                PredictResponse::decode(&client_comm.recv(0, SERVE_RESPONSE_TAG).unwrap())
                    .unwrap();
            assert_eq!(err.version, 0);
            assert_eq!(err.status, ReplyStatus::Malformed);

            client_comm.send(0, SERVE_STOP_TAG, Bytes::new()).unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.requests, 2);
            assert_eq!(stats.rows, 4);
            assert_eq!(stats.publishes, 1);
            assert_eq!(stats.malformed, 1);
            assert_eq!(stats.last_version, 2);
        });
    }

    #[test]
    fn serve_config_parallel_session_is_bit_identical() {
        // A large batch through a live session with score_threads=4 over
        // the quantized layout must produce exactly the serial flat bits.
        let model = stump_model(1.5, -2.5);
        let slot = ModelSlot::new(&model).unwrap();
        let n_rows = 200usize;
        let rows: Vec<f32> = (0..n_rows * 2).map(|i| (i as f32 * 0.37).sin()).collect();
        let req = PredictRequest { req_id: 1, n_features: 2, max_trees: 0, rows };
        let serial = score_request(&slot.load(), &PerRow, &req);

        let cfg = ServeConfig {
            strategy: Strategy::Blocked(0),
            layout: Layout::Quant,
            score_threads: 4,
        };
        let executor = cfg.executor();
        assert_eq!(executor.label(), "blocked@quant+t4");

        let mesh = Comm::mesh(2, NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: 1e9 });
        let mut mesh = mesh.into_iter();
        let (server_comm, client_comm) = (mesh.next().unwrap(), mesh.next().unwrap());
        std::thread::scope(|scope| {
            let slot = &slot;
            let executor = executor.as_ref();
            let server =
                scope.spawn(move || serve(&server_comm, slot, executor, 1).unwrap());
            client_comm.send(0, SERVE_REQUEST_TAG, Bytes::from(req.encode())).unwrap();
            let resp =
                PredictResponse::decode(&client_comm.recv(0, SERVE_RESPONSE_TAG).unwrap())
                    .unwrap();
            let same = serial
                .scores
                .iter()
                .zip(&resp.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "parallel quant session diverged from serial flat scoring");
            client_comm.send(0, SERVE_STOP_TAG, Bytes::new()).unwrap();
            let stats = server.join().unwrap();
            assert_eq!(stats.rows, n_rows as u64);
        });
    }

    #[test]
    fn slot_snapshots_survive_publish() {
        let slot = ModelSlot::new(&stump_model(1.0, -1.0)).unwrap();
        let snapshot = slot.load();
        assert_eq!(slot.publish(&stump_model(2.0, -2.0)).unwrap(), 2);
        // The pre-publish snapshot is still whole and scoreable.
        assert_eq!(snapshot.version, 1);
        let mut out = [0.0f64];
        PerRow.predict_into(&snapshot, &[0.0, 0.0], &mut out);
        assert_eq!(out, [1.0]);
        assert_eq!(slot.version(), 2);
        // A broken publish leaves the slot serving the old version.
        let mut broken = stump_model(0.0, 0.0);
        broken.init_scores.clear();
        assert!(slot.publish(&broken).is_err());
        assert_eq!(slot.version(), 2);
        // Versioned publish: stale (≤ current) rejected, forward jumps land.
        assert!(slot.publish_versioned(&stump_model(3.0, -3.0), 2).is_err());
        assert_eq!(slot.publish_versioned(&stump_model(3.0, -3.0), 7).unwrap(), 7);
        assert_eq!(slot.version(), 7);
    }
}
