//! Inference serving engine (`gbdt-serve`).
//!
//! Training is half of a production GBDT system; this crate is the other
//! half — scoring trained ensembles at high request rates. Following
//! *A Comparison of Decision Forest Inference Platforms from A Database
//! Perspective*, inference is framed as a query-execution problem:
//!
//! * [`compile`] lowers a [`gbdt_core::model::GbdtModel`] into a
//!   [`CompiledEnsemble`] — every tree flattened breadth-first into a
//!   contiguous array of 16-byte [`compile::FlatNode`]s (packed
//!   feature/default-direction, threshold, child offset, leaf payload),
//!   with leaf values pooled separately and leaves compiled as
//!   self-looping nodes so traversal needs no `is_leaf` branch.
//! * [`exec`] provides two interchangeable execution strategies behind
//!   one trait: per-row traversal with 4-way tree interleaving
//!   ([`exec::PerRow`]) and blocked batch evaluation ([`exec::Blocked`])
//!   that streams row tiles through L1-resident tree blocks — the
//!   database-style strategy whose win/loss crossover against per-row
//!   moves with batch size and tree count. Each strategy also runs over
//!   a second, 8-byte *quantized* node layout ([`compile::QuantNode`],
//!   selected by [`exec::Layout`]) that indirects thresholds through
//!   per-feature tables of the exact original `f32` cuts — half the
//!   node bytes, bit-identical scores, so ensembles roughly twice as
//!   large stay L2-resident.
//! * [`pool`] parallelizes batch scoring inside a rank: a deterministic
//!   scoped thread pool splits a request into fixed 64-row chunks with
//!   disjoint output slices (`score_threads` knob in
//!   [`server::ServeConfig`]), bit-identical at every thread count.
//! * [`server`] runs a request loop over the `gbdt-cluster` byte-message
//!   fabric with atomic model hot-swap ([`server::ModelSlot`]): a trainer
//!   publishes [`GbdtModel::encode_bytes`] payloads and in-flight traffic
//!   only ever observes fully the old or fully the new version.
//! * [`traffic`] is an open-loop synthetic load generator (configurable
//!   QPS, coordinated-omission-aware latency) reporting p50/p99/p999 and
//!   throughput through [`stats::ServeRun`].
//!
//! The serving plane also runs **replicated** ([`router`], [`replica`],
//! [`avail`]): rank 0 routes client requests over a group of replica
//! ranks with per-request deadlines, bounded retries, one hedged backup
//! after a p99-derived delay (duplicates suppressed by routing id),
//! typed load-shedding over bounded inflight queues, optional
//! degraded-mode tree-prefix scoring past the high-water mark, and
//! heartbeat-driven failover with crash recovery + resync. The
//! availability harness ([`avail::run_avail`]) ledgers every request as
//! served / degraded / shed / failed under a seeded
//! [`FaultPlan`](gbdt_cluster::FaultPlan) and verifies each response
//! bit-exactly against its stamped `(version, trees_scored)`.
//!
//! Every strategy is bit-identical to [`GbdtModel::predict_row_into`]:
//! scores accumulate in ascending tree order from the same init scores,
//! so the f64 addition sequence — and therefore every output bit — is
//! unchanged. `tests/serve_equivalence.rs` pins this across all seven
//! trainers and Vero.
//!
//! [`GbdtModel::encode_bytes`]: gbdt_core::model::GbdtModel::encode_bytes
//! [`GbdtModel::predict_row_into`]: gbdt_core::model::GbdtModel::predict_row_into

pub mod avail;
pub mod compile;
pub mod exec;
pub mod pool;
pub mod replica;
pub mod router;
pub mod server;
pub mod stats;
pub mod traffic;
pub mod wire;

pub use avail::{run_avail, AvailConfig};
pub use compile::{CompiledEnsemble, QuantLayout, QuantNode};
pub use exec::{Blocked, ExecStrategy, Layout, PerRow, QuantBlocked, QuantPerRow, Strategy};
pub use replica::{run_replica, ReplicaConfig, ReplicaStats, ROUTER_RANK};
pub use router::{run_router, RouterConfig, RouterStats};
pub use server::{serve, ModelSlot, ServeConfig, ServerStats};
pub use stats::{AvailRun, ServeRun};
pub use traffic::{run_traffic, TrafficConfig};
