//! Synthetic open-loop traffic generation against a serving mesh.
//!
//! [`run_traffic`] stands up a `gbdt-cluster` mesh — rank 0 serving, the
//! remaining ranks driving load — and measures latency the open-loop way:
//! each request has a *scheduled* start (`i / qps` into the run) and its
//! latency is `completion − scheduled_start`, so a slow server visibly
//! accumulates queueing delay instead of silently slowing the request
//! clock (the coordinated-omission trap).
//!
//! Every client scores a fixed per-client batch, which makes end-to-end
//! verification exact: the harness precomputes the expected scores of
//! every `(model version, client)` pair with the tree-walk predictor, and
//! any response that does not bit-match its stamped version's expectation
//! fails the run — the property that proves hot-swaps are never torn.

use crate::exec::{Layout, Strategy};
use crate::server::{serve, ModelSlot, ServeConfig};
use crate::stats::{Clock, ServeRun};
use crate::wire::{PredictRequest, PredictResponse, PublishAck};
use bytes::Bytes;
use gbdt_cluster::comm::protocol::{
    SERVE_PUBLISH_TAG, SERVE_REQUEST_TAG, SERVE_RESPONSE_TAG, SERVE_STOP_TAG,
};
use gbdt_cluster::{Comm, NetworkCostModel};
use gbdt_core::model::GbdtModel;

/// Knobs of one synthetic traffic run.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Client ranks driving load (the mesh is `n_clients + 1` wide).
    pub n_clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Rows per request.
    pub batch: usize,
    /// Aggregate offered load, requests/second; `0` = open throttle
    /// (each request scheduled at the previous one's completion).
    pub qps: f64,
    /// Execution strategy the server runs.
    pub strategy: Strategy,
    /// Compiled node layout the server scores through.
    pub layout: Layout,
    /// Scoring threads per request batch (1 = serial, 0 = auto).
    pub score_threads: usize,
    /// Seed for the synthetic feature rows.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            n_clients: 2,
            requests_per_client: 200,
            batch: 16,
            qps: 0.0,
            strategy: Strategy::Blocked(0),
            layout: Layout::Flat,
            score_threads: 1,
            seed: 42,
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic per-client batch: values in ±3 with ~12% missing cells.
fn client_rows(seed: u64, client: usize, batch: usize, n_features: usize) -> Vec<f32> {
    let mut state = seed ^ (client as u64).wrapping_mul(0x9e37_79b9);
    (0..batch * n_features)
        .map(|_| {
            if splitmix(&mut state).is_multiple_of(8) {
                f32::NAN
            } else {
                let unit = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                (unit * 6.0 - 3.0) as f32
            }
        })
        .collect()
}

/// Reference scores of a NaN-dense batch via the tree-walk predictor.
fn walk_scores(model: &GbdtModel, rows: &[f32], n_features: usize) -> Vec<f64> {
    let c = model.n_outputs();
    let mut out = vec![0.0; rows.len() / n_features * c];
    let mut feats = Vec::with_capacity(n_features);
    let mut vals = Vec::with_capacity(n_features);
    for (r, row) in rows.chunks_exact(n_features).enumerate() {
        feats.clear();
        vals.clear();
        for (f, &v) in row.iter().enumerate() {
            if !v.is_nan() {
                feats.push(f as u32);
                vals.push(v);
            }
        }
        model.predict_row_into(&feats, &vals, &mut out[r * c..(r + 1) * c]);
    }
    out
}

/// Open-loop pacing: sleeps until request `i`'s *scheduled* start and
/// returns that schedule — `i / qps`, a pure function of the pacing
/// plan. Crucially, when the client is running late (a backlogged
/// server pushed previous completions past the schedule) the scheduled
/// start is returned unchanged rather than "now": latency measured from
/// it then includes the queueing delay the backlog caused. This is the
/// coordinated-omission guard, and it is what keeps parallel chunked
/// scoring honest too — a request's completion is its *last* chunk's
/// completion (the server replies only after every chunk joins), so
/// neither pacing nor chunking can shrink the measured interval.
///
/// `qps == 0` degrades to closed-loop pacing: each request is scheduled
/// at the moment it is issued.
fn pace_to_schedule(i: usize, per_client_qps: f64, clock: Clock) -> f64 {
    if per_client_qps > 0.0 {
        let target = i as f64 / per_client_qps;
        let now = clock.elapsed_s();
        if now < target {
            std::thread::sleep(std::time::Duration::from_secs_f64(target - now));
        }
        target
    } else {
        clock.elapsed_s()
    }
}

struct ClientOutcome {
    latencies_s: Vec<f64>,
    versions: Vec<u64>,
    dropped: u64,
    rows: u64,
    error: Option<String>,
}

/// What one client thread does: paced request/verify loop, plus (client 1
/// only) publishing each follow-up model at an evenly spaced point.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    comm: &Comm,
    client: usize,
    cfg: &TrafficConfig,
    rows: &[f32],
    n_features: usize,
    expected_by_version: &[Vec<f64>],
    publish_payloads: &[(usize, Vec<u8>)],
    clock: Clock,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies_s: Vec::with_capacity(cfg.requests_per_client),
        versions: Vec::new(),
        dropped: 0,
        rows: 0,
        error: None,
    };
    let per_client_qps = cfg.qps / cfg.n_clients.max(1) as f64;
    for i in 0..cfg.requests_per_client {
        // Publishes happen before the request slated for the same index.
        for &(at, ref payload) in publish_payloads {
            if at == i {
                if let Err(e) =
                    comm.send(0, SERVE_PUBLISH_TAG, Bytes::from(payload.clone()))
                {
                    out.error = Some(format!("publish send: {e}"));
                    return out;
                }
                match comm.recv(0, SERVE_RESPONSE_TAG).map(|b| PublishAck::decode(&b)) {
                    Ok(Ok(ack)) if ack.version > 0 => {}
                    other => {
                        out.error = Some(format!("publish not acked: {other:?}"));
                        return out;
                    }
                }
            }
        }
        let scheduled_s = pace_to_schedule(i, per_client_qps, clock);
        let req = PredictRequest {
            req_id: (client as u64) << 32 | i as u64,
            n_features: n_features as u32,
            max_trees: 0,
            rows: rows.to_vec(),
        };
        if let Err(e) = comm.send(0, SERVE_REQUEST_TAG, Bytes::from(req.encode())) {
            out.error = Some(format!("request send: {e}"));
            return out;
        }
        // Completion is stamped the instant the full response frame
        // arrives — under parallel scoring the server only replies after
        // its last row chunk joins, so this is last-chunk completion.
        // Stamping *before* decode keeps client-side parse cost out of
        // the served-latency ledger.
        let (resp, completed_s) = match comm.recv(0, SERVE_RESPONSE_TAG) {
            Ok(bytes) => {
                let completed_s = clock.elapsed_s();
                match PredictResponse::decode(&bytes) {
                    Ok(resp) => (resp, completed_s),
                    Err(e) => {
                        out.error = Some(format!("bad response frame: {e}"));
                        return out;
                    }
                }
            }
            Err(_) => {
                out.dropped += 1;
                continue;
            }
        };
        out.latencies_s.push(completed_s - scheduled_s);
        if resp.req_id != req.req_id {
            out.error = Some(format!("response id {} for request {}", resp.req_id, req.req_id));
            return out;
        }
        // Torn-swap detector: the scores must bit-match the expectation of
        // exactly the version stamped on the response.
        let expected = match expected_by_version.get(resp.version.wrapping_sub(1) as usize) {
            Some(e) => e,
            None => {
                out.error = Some(format!("unknown model version {}", resp.version));
                return out;
            }
        };
        let matches = expected.len() == resp.scores.len()
            && expected.iter().zip(&resp.scores).all(|(a, b)| a.to_bits() == b.to_bits());
        if !matches {
            out.error =
                Some(format!("scores do not match version {} expectation", resp.version));
            return out;
        }
        out.versions.push(resp.version);
        out.rows += (rows.len() / n_features) as u64;
    }
    out
}

/// Runs a full synthetic traffic session: serves `models[0]`, hot-swaps
/// to each subsequent model at evenly spaced points mid-run (published by
/// client 1), and verifies every response against its stamped version.
///
/// Returns the aggregated [`ServeRun`], or `Err` on any protocol or
/// verification failure (torn swap, dropped ack, wrong scores).
pub fn run_traffic(models: &[GbdtModel], cfg: &TrafficConfig) -> Result<ServeRun, String> {
    let first = models.first().ok_or("need at least one model")?;
    if cfg.n_clients == 0 || cfg.requests_per_client == 0 || cfg.batch == 0 {
        return Err("n_clients, requests_per_client, and batch must be positive".into());
    }
    let n_features = first.n_features.max(1);
    for (k, m) in models.iter().enumerate().skip(1) {
        if m.n_features.max(1) != n_features || m.n_outputs() != first.n_outputs() {
            return Err(format!("model {k} shape differs from the initial model"));
        }
    }
    let batches: Vec<Vec<f32>> = (1..=cfg.n_clients)
        .map(|c| client_rows(cfg.seed, c, cfg.batch, n_features))
        .collect();
    // expected[version - 1][client - 1] = exact scores for that pairing.
    let expected: Vec<Vec<Vec<f64>>> = models
        .iter()
        .map(|m| batches.iter().map(|rows| walk_scores(m, rows, n_features)).collect())
        .collect();
    // Client 1 publishes model k at an evenly spaced request index.
    let publish_payloads: Vec<(usize, Vec<u8>)> = models
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, m)| {
            (k * cfg.requests_per_client / models.len(), m.encode_bytes())
        })
        .collect();

    let slot = ModelSlot::new(first)?;
    let executor = ServeConfig {
        strategy: cfg.strategy,
        layout: cfg.layout,
        score_threads: cfg.score_threads,
    }
    .executor();
    let mesh = Comm::mesh(
        cfg.n_clients + 1,
        NetworkCostModel { latency_s: 0.0, bandwidth_bytes_per_s: 1e9 },
    );
    let mut comms = mesh.into_iter();
    let server_comm = comms.next().ok_or("empty mesh")?;
    let clock = Clock::new();

    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut server_result = None;
    std::thread::scope(|scope| {
        let slot = &slot;
        let executor = &executor;
        let server =
            scope.spawn(move || serve(&server_comm, slot, executor.as_ref(), cfg.n_clients));
        let mut handles = Vec::new();
        for (idx, comm) in comms.enumerate() {
            let client = idx + 1;
            let rows = &batches[idx];
            let expected_by_version: Vec<Vec<f64>> =
                expected.iter().map(|per_client| per_client[idx].clone()).collect();
            let publishes: Vec<(usize, Vec<u8>)> =
                if client == 1 { publish_payloads.clone() } else { Vec::new() };
            handles.push(scope.spawn(move || {
                let outcome = client_loop(
                    &comm,
                    client,
                    cfg,
                    rows,
                    n_features,
                    &expected_by_version,
                    &publishes,
                    clock,
                );
                let _ = comm.send(0, SERVE_STOP_TAG, Bytes::new());
                outcome
            }));
        }
        for h in handles {
            if let Ok(outcome) = h.join() {
                outcomes.push(outcome);
            }
        }
        server_result = Some(server.join());
    });
    let wall_s = clock.elapsed_s();

    let server_stats = match server_result {
        Some(Ok(Ok(stats))) => stats,
        other => return Err(format!("server failed: {other:?}")),
    };
    if outcomes.len() != cfg.n_clients {
        return Err(format!("{} of {} clients panicked", cfg.n_clients - outcomes.len(), cfg.n_clients));
    }
    let mut latencies = Vec::new();
    let mut versions = Vec::new();
    let mut dropped = 0u64;
    let mut rows = 0u64;
    for outcome in outcomes {
        if let Some(e) = outcome.error {
            return Err(e);
        }
        latencies.extend(outcome.latencies_s);
        versions.extend(outcome.versions);
        dropped += outcome.dropped;
        rows += outcome.rows;
    }
    if server_stats.malformed > 0 {
        return Err(format!("server saw {} malformed frames", server_stats.malformed));
    }
    // The executor label, not `cfg.strategy.label()`: it names the path
    // actually engaged, including layout and thread suffixes
    // (`blocked@quant+t4`), so a trajectory can't claim a configuration
    // it didn't run.
    Ok(ServeRun::from_latencies(
        executor.label(),
        cfg.batch,
        first.trees.len(),
        cfg.n_clients,
        cfg.qps,
        &latencies,
        dropped,
        rows,
        server_stats.publishes,
        versions,
        wall_s,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    fn model_with_leaves(l: f64, r: f64, n_trees: usize) -> GbdtModel {
        let mut m = GbdtModel::new(Objective::SquaredError, 0.1, 4);
        for k in 0..n_trees {
            let mut t = Tree::new(2, 1);
            t.set_internal(0, (k % 4) as u32, 0, 0.25, true);
            t.set_leaf(1, vec![l]);
            t.set_leaf(2, vec![r]);
            m.trees.push(t);
        }
        m
    }

    #[test]
    fn traffic_completes_with_verified_scores() {
        let cfg = TrafficConfig {
            n_clients: 2,
            requests_per_client: 40,
            batch: 8,
            qps: 0.0,
            strategy: Strategy::PerRow,
            seed: 7,
            ..TrafficConfig::default()
        };
        let run = run_traffic(&[model_with_leaves(1.0, -1.0, 10)], &cfg).unwrap();
        assert_eq!(run.requests, 80);
        assert_eq!(run.dropped, 0);
        assert_eq!(run.rows, 640);
        assert_eq!(run.publishes, 0);
        assert_eq!(run.versions_seen, vec![1]);
        assert!(run.throughput_rps > 0.0);
        assert!(run.p99_ms >= run.p50_ms);
    }

    #[test]
    fn hot_swap_mid_run_is_never_torn() {
        let cfg = TrafficConfig {
            n_clients: 3,
            requests_per_client: 60,
            batch: 4,
            qps: 0.0,
            strategy: Strategy::Blocked(0),
            seed: 11,
            ..TrafficConfig::default()
        };
        let models =
            [model_with_leaves(1.0, -1.0, 8), model_with_leaves(9.0, -9.0, 8)];
        let run = run_traffic(&models, &cfg).unwrap();
        assert_eq!(run.dropped, 0);
        assert_eq!(run.publishes, 1);
        assert_eq!(run.versions_seen, vec![1, 2]);
        assert_eq!(run.requests, 180);
    }

    #[test]
    fn paced_traffic_reports_latency() {
        let cfg = TrafficConfig {
            n_clients: 1,
            requests_per_client: 30,
            batch: 2,
            qps: 2000.0,
            strategy: Strategy::PerRow,
            seed: 3,
            ..TrafficConfig::default()
        };
        let run = run_traffic(&[model_with_leaves(0.5, -0.5, 4)], &cfg).unwrap();
        assert_eq!(run.requests, 30);
        assert!(run.wall_s > 0.0);
        assert!(run.p999_ms >= run.p99_ms && run.p99_ms >= run.p50_ms);
    }

    /// Regression (coordinated omission): a client running *late* must
    /// still get the original schedule back, so latency measured from it
    /// includes the backlog. If pacing ever "resets" to the current
    /// clock, a stalled server would erase its own queueing delay from
    /// the ledger.
    #[test]
    fn late_pacing_keeps_the_scheduled_start() {
        let clock = Clock::new();
        // Request 2 at 1000 qps is scheduled at 2 ms; by the time the
        // client gets to it the run is already ≥ 20 ms old (a backlog).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let scheduled = pace_to_schedule(2, 1000.0, clock);
        assert_eq!(scheduled, 0.002, "late request must keep its scheduled start");
        let latency = clock.elapsed_s() - scheduled;
        assert!(latency >= 0.018, "backlog must surface as latency, got {latency}");
        // Closed loop (qps = 0): scheduled at issue time, so latency
        // excludes think time by construction.
        let scheduled = pace_to_schedule(2, 0.0, clock);
        assert!(scheduled >= 0.02);
    }

    /// Paced traffic with parallel chunked scoring: every response still
    /// bit-matches its stamped version (the snapshot is taken once per
    /// request) and the latency ledger stays whole — one sample per
    /// completed request, measured to last-chunk completion.
    #[test]
    fn parallel_scoring_keeps_paced_latency_whole() {
        let cfg = TrafficConfig {
            n_clients: 2,
            requests_per_client: 25,
            batch: 96, // > one 64-row chunk, so the pool actually fans out
            qps: 1500.0,
            strategy: Strategy::Blocked(0),
            layout: Layout::Quant,
            score_threads: 4,
            seed: 13,
        };
        let models = [model_with_leaves(1.0, -1.0, 6), model_with_leaves(4.0, -4.0, 6)];
        let run = run_traffic(&models, &cfg).unwrap();
        assert_eq!(run.requests, 50, "one latency sample per request");
        assert_eq!(run.dropped, 0);
        assert_eq!(run.versions_seen, vec![1, 2], "both versions served, none torn");
        assert_eq!(run.rows, 50 * 96);
        assert!(run.p999_ms >= run.p99_ms && run.p99_ms >= run.p50_ms);
    }
}
