//! The bounded protocol model checker (DESIGN.md item 15).
//!
//! Every protocol-bearing function in the SPMD simulation scope
//! (collectives, parameter server, repartition, the seven trainers) is a
//! *unit*: for world sizes 1–4 its IR is flattened into one linear trace
//! per rank — branch conditions evaluated in a per-rank environment,
//! unresolved data-dependent choices enumerated *synchronously* across
//! ranks (SPMD code branches on the same data everywhere; rank divergence
//! enters only through `rank()`), unresolved parameters (a broadcast
//! root, a tag passed in) enumerated as free variables over `0..world`.
//! A greedy scheduler then runs the rank traces against per-edge FIFO
//! buffers. Sends never block (matching the real `Comm`), receives match
//! on `(from, tag)`, and collectives (plus `fault_point`, modeled
//! identically) are all-ranks rendezvous — so the scheduler is confluent
//! and a single greedy run per trace set decides:
//!
//! * `mc-deadlock` — a rank blocks forever on a receive nothing matches;
//! * `mc-collective-divergence` — ranks reach different rendezvous
//!   (or some ranks exit while others wait at one);
//! * `mc-orphan-send` — a message is never received, or is addressed to
//!   a rank outside the world.
//!
//! The serving plane is *not* simulated — every serve-loop receive has a
//! tick timeout, so nothing there blocks forever. Instead its frame
//! machine is checked statically by tag *name*: every frame a role emits
//! must be in the receivable set of the role it targets
//! (`mc-orphan-frame`), and the replica's crash-recovery path must purge
//! stale buffers, announce itself with a RECOVER frame the router
//! listens for, and only shrink its listen set while degraded
//! (`mc-fault-closure`). `dead-tag` flags registry tags no extracted
//! schedule mentions. Wire-schema parity and lock ordering live in
//! [`crate::schema`] and [`crate::locks`] and are folded into the same
//! report.

use crate::extract::{extract_fns, parse_registry};
use crate::ir::{Cond, Expr, FnDef, Op, RecvAnySrc, Rhs};
use crate::lexer::{lex, Lexed};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// `(id, summary)` for the model-check rule family (`--model-check`).
/// Kept separate from [`crate::rules::RULES`]: these run in their own
/// pass, over extracted schedules rather than raw tokens.
pub const MC_RULES: &[(&str, &str)] = &[
    (
        "mc-deadlock",
        "a rank's schedule blocks forever on a recv no reachable send matches, for \
         some world size 1-4 and nondeterministic choice",
    ),
    (
        "mc-collective-divergence",
        "ranks reach different collective rendezvous (or some ranks exit while \
         others wait) — the blocking-rendezvous deadlock",
    ),
    (
        "mc-orphan-send",
        "a sent message is never received by the end of the schedule, or targets a \
         rank outside the world",
    ),
    (
        "mc-orphan-frame",
        "a serving-plane role emits a frame tag absent from the receiving role's \
         recv/recv_any tag set",
    ),
    (
        "mc-fault-closure",
        "the replica crash-recovery path must purge pending buffers, send a RECOVER \
         frame the router receives, and keep its degraded listen set a subset of \
         the healthy one",
    ),
    (
        "dead-tag",
        "a tag registered in comm::protocol that no extracted schedule ever sends \
         or receives",
    ),
    (
        "schema-parity",
        "an encode_*/decode_* pair disagrees on field order or field width",
    ),
    (
        "lock-order",
        "two serve-plane lock acquisitions nest in opposite orders (or re-enter \
         the same lock) — a latent deadlock",
    ),
];

/// Collective tags auto-allocate from high space (mirrors
/// `COLLECTIVE_TAG_BASE` being `1 << 63` minus headroom; the exact value
/// only needs to be collision-free with registry tags).
const ALLOC_BASE: u64 = 1 << 62;
const MAX_WORLD: u64 = 4;
const MAX_FREE_VARS: usize = 2;
const MAX_FOR_TRIPS: u64 = 16;
const MAX_TRACE: usize = 4096;
const VECTOR_BUDGET: usize = 4096;

/// Files whose functions are simulated as SPMD units.
fn sim_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/cluster/src/collectives.rs"
            | "crates/cluster/src/ps.rs"
            | "crates/partition/src/transform.rs"
            | "crates/quadrants/src/qd1.rs"
            | "crates/quadrants/src/qd2.rs"
            | "crates/quadrants/src/qd3.rs"
            | "crates/quadrants/src/qd4.rs"
            | "crates/quadrants/src/yggdrasil.rs"
            | "crates/quadrants/src/featpar.rs"
            | "crates/quadrants/src/common.rs"
            | "crates/vero/src/system.rs"
    )
}

/// Serving-plane roles, keyed by basename so fixtures scope the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ServeRole {
    Router,
    Replica,
    Server,
    /// Request/publish clients (traffic generator, availability harness).
    Client,
}

fn serve_role(path: &str) -> Option<ServeRole> {
    if !path.starts_with("crates/serve/src/") {
        return None;
    }
    match path.rsplit('/').next().unwrap_or("") {
        "router.rs" => Some(ServeRole::Router),
        "replica.rs" => Some(ServeRole::Replica),
        "server.rs" => Some(ServeRole::Server),
        "traffic.rs" | "avail.rs" => Some(ServeRole::Client),
        _ => None,
    }
}

/// Where a send from this file lands: routers talk to clients when the
/// peer expression names one, replicas otherwise; everyone else has a
/// fixed peer role.
fn send_target(path: &str, to_vars: &BTreeSet<String>) -> Option<ServeRole> {
    match path.rsplit('/').next().unwrap_or("") {
        "router.rs" => {
            if to_vars.contains("client") || to_vars.contains("publisher") {
                Some(ServeRole::Client)
            } else {
                Some(ServeRole::Replica)
            }
        }
        "replica.rs" => Some(ServeRole::Router),
        "server.rs" => Some(ServeRole::Client),
        "traffic.rs" => Some(ServeRole::Server),
        "avail.rs" => Some(ServeRole::Router),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Flattening: IR tree -> one linear trace per rank
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum TOp {
    Send { to: u64, tag: u64, line: u32 },
    Recv { from: u64, tag: u64, line: u32 },
    RecvAny { tags: Vec<u64>, line: u32 },
    Rendezvous { kind: String, line: u32 },
}

enum Flow {
    Normal,
    Continue,
    Break,
    Return,
}

struct Flattener<'a> {
    rank: u64,
    world: u64,
    env: BTreeMap<String, u64>,
    /// Free-variable assignment, re-applied when an opaque `let` shadows.
    free_env: &'a BTreeMap<String, u64>,
    origins: BTreeMap<String, Expr>,
    alloc: u64,
    choices: &'a [u32],
    fndef: &'a FnDef,
    bearing: &'a BTreeSet<String>,
    /// Collect mode: explore every branch, gather free variables, build
    /// no trace, never skip on unresolved peer/tag expressions.
    collect: bool,
    free: BTreeSet<String>,
    trace: Vec<TOp>,
    skip: Option<(u32, String)>,
}

impl<'a> Flattener<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: u64,
        world: u64,
        base_env: &BTreeMap<String, u64>,
        free_env: &'a BTreeMap<String, u64>,
        choices: &'a [u32],
        fndef: &'a FnDef,
        bearing: &'a BTreeSet<String>,
        collect: bool,
    ) -> Self {
        let mut env = base_env.clone();
        env.extend(free_env.iter().map(|(k, v)| (k.clone(), *v)));
        Flattener {
            rank,
            world,
            env,
            free_env,
            origins: BTreeMap::new(),
            alloc: 0,
            choices,
            fndef,
            bearing,
            collect,
            free: BTreeSet::new(),
            trace: Vec::new(),
            skip: None,
        }
    }

    fn eval(&self, e: &Expr) -> Option<u64> {
        e.eval(self.rank, self.world, &self.env)
    }

    /// A peer/tag-position expression must evaluate. In collect mode its
    /// unbound variables become free-variable candidates instead.
    fn resolve(&mut self, e: &Expr, line: u32, what: &str) -> Option<u64> {
        if let Some(v) = self.eval(e) {
            return Some(v);
        }
        if self.collect {
            self.collect_unbound(e);
            Some(0)
        } else {
            if self.skip.is_none() {
                self.skip = Some((line, format!("unresolvable {what} expression")));
            }
            None
        }
    }

    fn collect_unbound(&mut self, e: &Expr) {
        let mut vars = BTreeSet::new();
        e.vars_into(&mut vars);
        for v in vars {
            if !self.env.contains_key(&v) {
                self.free.insert(v);
            }
        }
    }

    fn choice(&self, site: u32) -> u32 {
        self.choices.get(site as usize).copied().unwrap_or(0)
    }

    fn walk(&mut self, ops: &[Op]) -> Flow {
        for op in ops {
            if self.skip.is_some() && !self.collect {
                return Flow::Return;
            }
            if self.trace.len() > MAX_TRACE {
                self.skip = Some((0, "trace bound exceeded".into()));
                return Flow::Return;
            }
            match op {
                Op::Let(name, rhs) => self.walk_let(name, rhs),
                Op::Send { to, tag, line } => {
                    let (Some(t), Some(g)) = (
                        self.resolve(to, *line, "send peer"),
                        self.resolve(tag, *line, "send tag"),
                    ) else {
                        return Flow::Return;
                    };
                    self.trace.push(TOp::Send { to: t, tag: g, line: *line });
                }
                Op::Recv { from, tag, line } => {
                    let (Some(f), Some(g)) = (
                        self.resolve(from, *line, "recv peer"),
                        self.resolve(tag, *line, "recv tag"),
                    ) else {
                        return Flow::Return;
                    };
                    self.trace.push(TOp::Recv { from: f, tag: g, line: *line });
                }
                Op::RecvAny { tags, line } => {
                    let exprs: Vec<Expr> = match tags {
                        RecvAnySrc::List(v) => v.clone(),
                        RecvAnySrc::Ref(name) => match self.fndef.tag_arrays.get(name) {
                            Some(v) => v.clone(),
                            None => {
                                self.skip = Some((
                                    *line,
                                    format!("recv_any over unresolvable tag set `{name}`"),
                                ));
                                return Flow::Return;
                            }
                        },
                    };
                    let mut vals = Vec::new();
                    for e in &exprs {
                        match self.resolve(e, *line, "recv_any tag") {
                            Some(v) => vals.push(v),
                            None => return Flow::Return,
                        }
                    }
                    self.trace.push(TOp::RecvAny { tags: vals, line: *line });
                }
                Op::Rendezvous { kind, line } => {
                    self.trace.push(TOp::Rendezvous { kind: kind.clone(), line: *line });
                }
                Op::Call { name, line } => {
                    // A call into a protocol-bearing function is itself a
                    // rendezvous: every rank must reach it at the same
                    // schedule point (the callee's internals are verified
                    // as their own unit).
                    if self.bearing.contains(name) {
                        self.trace.push(TOp::Rendezvous {
                            kind: format!("fn {name}"),
                            line: *line,
                        });
                    }
                }
                Op::Purge { .. } => {}
                Op::If { cond, then, els, site, .. } => {
                    if self.collect {
                        if let Cond::Cmp(_, a, b) = cond {
                            let uneval = self.eval(a).is_none() || self.eval(b).is_none();
                            let rank_dep = a.mentions_rank(&self.origins)
                                || b.mentions_rank(&self.origins);
                            if uneval && rank_dep {
                                self.collect_unbound(a);
                                self.collect_unbound(b);
                            }
                        }
                        self.walk(then);
                        self.walk(els);
                    } else {
                        let take_then = match cond {
                            Cond::Cmp(op, a, b) => match (self.eval(a), self.eval(b)) {
                                (Some(x), Some(y)) => op.apply(x, y),
                                _ => self.choice(*site) == 0,
                            },
                            Cond::Unknown => self.choice(*site) == 0,
                        };
                        let flow = if take_then { self.walk(then) } else { self.walk(els) };
                        if !matches!(flow, Flow::Normal) {
                            return flow;
                        }
                    }
                }
                Op::ForRange { var, lo, hi, body, site } => {
                    if self.collect {
                        self.env.insert(var.clone(), self.eval(lo).unwrap_or(0));
                        self.walk(body);
                    } else {
                        match (self.eval(lo), self.eval(hi)) {
                            (Some(l), Some(h)) => {
                                let h = h.min(l.saturating_add(MAX_FOR_TRIPS));
                                let mut v = l;
                                while v < h {
                                    self.env.insert(var.clone(), v);
                                    match self.walk(body) {
                                        Flow::Break => break,
                                        Flow::Return => return Flow::Return,
                                        _ => {}
                                    }
                                    v += 1;
                                }
                            }
                            _ => {
                                // Degraded: 0 or 2 trips, var = trip index.
                                let trips = if self.choice(*site) == 0 { 0 } else { 2 };
                                for v in 0..trips {
                                    self.env.insert(var.clone(), v);
                                    match self.walk(body) {
                                        Flow::Break => break,
                                        Flow::Return => return Flow::Return,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
                Op::LoopNondet { body, site } => {
                    if self.collect {
                        self.walk(body);
                    } else {
                        let trips = if self.choice(*site) == 0 { 0 } else { 2 };
                        for _ in 0..trips {
                            match self.walk(body) {
                                Flow::Break => break,
                                Flow::Return => return Flow::Return,
                                _ => {}
                            }
                        }
                    }
                }
                Op::Match { arms, site, .. } => {
                    if self.collect {
                        for arm in arms {
                            self.walk(arm);
                        }
                    } else if !arms.is_empty() {
                        let pick = (self.choice(*site) as usize) % arms.len();
                        let flow = self.walk(&arms[pick]);
                        if !matches!(flow, Flow::Normal) {
                            return flow;
                        }
                    }
                }
                Op::Continue => return Flow::Continue,
                Op::Break => return Flow::Break,
                Op::Return => return Flow::Return,
            }
        }
        Flow::Normal
    }

    fn walk_let(&mut self, name: &str, rhs: &Rhs) {
        match rhs {
            Rhs::Expr(e) => {
                self.origins.insert(name.to_string(), e.clone());
                if let Some(v) = self.eval(e) {
                    self.env.insert(name.to_string(), v);
                } else {
                    self.env.remove(name);
                }
            }
            Rhs::AllocTags(n) => {
                self.origins.remove(name);
                self.env.insert(name.to_string(), ALLOC_BASE + self.alloc);
                let cnt = self.eval(n).unwrap_or(1).clamp(1, 64);
                self.alloc += cnt;
            }
            Rhs::TagArray(_) | Rhs::Opaque => {
                self.origins.remove(name);
                // An opaque shadow of a free variable keeps its enumerated
                // value (the variable was collected as free precisely
                // because the binding resolves to nothing).
                match self.free_env.get(name) {
                    Some(v) => {
                        self.env.insert(name.to_string(), *v);
                    }
                    None => {
                        self.env.remove(name);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Choice-site enumeration
// ---------------------------------------------------------------------------

/// A choice site only earns a radix if some alternative under it could
/// change the trace or the environment.
fn subtree_matters(ops: &[Op]) -> bool {
    ops.iter().any(|op| match op {
        Op::Send { .. }
        | Op::Recv { .. }
        | Op::RecvAny { .. }
        | Op::Rendezvous { .. }
        | Op::Call { .. }
        | Op::Let(..) => true,
        Op::If { then, els, .. } => subtree_matters(then) || subtree_matters(els),
        Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => subtree_matters(body),
        Op::Match { arms, .. } => arms.iter().any(|a| subtree_matters(a)),
        _ => false,
    })
}

fn fill_radixes(ops: &[Op], rad: &mut [u32]) {
    for op in ops {
        match op {
            Op::If { then, els, site, .. } => {
                if subtree_matters(then) || subtree_matters(els) {
                    rad[*site as usize] = 2;
                }
                fill_radixes(then, rad);
                fill_radixes(els, rad);
            }
            Op::ForRange { body, site, .. } | Op::LoopNondet { body, site } => {
                if subtree_matters(body) {
                    rad[*site as usize] = 2;
                }
                fill_radixes(body, rad);
            }
            Op::Match { arms, site, .. } => {
                if arms.iter().any(|a| subtree_matters(a)) {
                    rad[*site as usize] = (arms.len().max(1)) as u32;
                }
                for arm in arms {
                    fill_radixes(arm, rad);
                }
            }
            _ => {}
        }
    }
}

/// Mixed-radix odometer, capped. Identical flattened trace sets are
/// deduplicated downstream, so over-enumeration (sites whose condition
/// turned out deterministic) costs flatten time, not simulation time.
fn enumerate_vectors(rad: &[u32], cap: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut v = vec![0u32; rad.len()];
    loop {
        out.push(v.clone());
        if out.len() >= cap {
            return out;
        }
        let mut i = 0;
        loop {
            if i >= rad.len() {
                return out;
            }
            v[i] += 1;
            if v[i] < rad[i].max(1) {
                break;
            }
            v[i] = 0;
            i += 1;
        }
    }
}

/// All assignments of `vars` over `0..world` (uniform across ranks: a
/// free variable models a value every rank computed identically — a
/// broadcast root, an owner, a caller-supplied tag).
fn enumerate_assignments(vars: &[String], world: u64) -> Vec<BTreeMap<String, u64>> {
    let mut out = vec![BTreeMap::new()];
    for var in vars {
        let mut next = Vec::with_capacity(out.len() * world as usize);
        for base in &out {
            for v in 0..world.max(1) {
                let mut m = base.clone();
                m.insert(var.clone(), v);
                next.push(m);
            }
        }
        out = next;
    }
    out
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

/// Greedy confluent run of one trace set. Sends never block and receive
/// matching is deterministic per receiver, so if any schedule deadlocks,
/// the greedy schedule stalls too — one run decides the trace set.
fn simulate(traces: &[Vec<TOp>], w: usize) -> (Option<(&'static str, u32, String)>, usize) {
    let mut pc = vec![0usize; w];
    let mut bufs: BTreeMap<(usize, usize), VecDeque<(u64, u32)>> = BTreeMap::new();
    let mut max_depth = 0usize;
    loop {
        let mut progressed = false;
        for r in 0..w {
            while let Some(op) = traces[r].get(pc[r]) {
                match op {
                    TOp::Send { to, tag, line } => {
                        let to = *to as usize;
                        if to >= w {
                            return (
                                Some((
                                    "mc-orphan-send",
                                    *line,
                                    format!(
                                        "rank {r} sends tag {tag:#x} to rank {to}, outside \
                                         world {w}"
                                    ),
                                )),
                                max_depth,
                            );
                        }
                        let q = bufs.entry((r, to)).or_default();
                        q.push_back((*tag, *line));
                        max_depth = max_depth.max(q.len());
                        pc[r] += 1;
                        progressed = true;
                    }
                    TOp::Recv { from, tag, .. } => {
                        let from = *from as usize;
                        let matched = from < w
                            && bufs.get_mut(&(from, r)).is_some_and(|q| {
                                q.iter()
                                    .position(|(t, _)| t == tag)
                                    .map(|pos| q.remove(pos))
                                    .is_some()
                            });
                        if !matched {
                            break;
                        }
                        pc[r] += 1;
                        progressed = true;
                    }
                    TOp::RecvAny { tags, .. } => {
                        let mut matched = false;
                        for s in 0..w {
                            if let Some(q) = bufs.get_mut(&(s, r)) {
                                if let Some(pos) =
                                    q.iter().position(|(t, _)| tags.contains(t))
                                {
                                    q.remove(pos);
                                    matched = true;
                                    break;
                                }
                            }
                        }
                        if !matched {
                            break;
                        }
                        pc[r] += 1;
                        progressed = true;
                    }
                    TOp::Rendezvous { .. } => break,
                }
            }
        }
        if progressed {
            continue;
        }

        // Stall. Classify.
        let done: Vec<bool> = (0..w).map(|r| pc[r] >= traces[r].len()).collect();
        if done.iter().all(|d| *d) {
            for ((from, to), q) in &bufs {
                if let Some((tag, line)) = q.front() {
                    return (
                        Some((
                            "mc-orphan-send",
                            *line,
                            format!(
                                "message tag {tag:#x} from rank {from} to rank {to} is \
                                 never received (world {w})"
                            ),
                        )),
                        max_depth,
                    );
                }
            }
            return (None, max_depth);
        }
        let pending: Vec<usize> = (0..w).filter(|r| !done[*r]).collect();
        let all_rvz = pending
            .iter()
            .all(|r| matches!(traces[*r][pc[*r]], TOp::Rendezvous { .. }));
        if all_rvz {
            let kinds: BTreeSet<&str> = pending
                .iter()
                .map(|r| match &traces[*r][pc[*r]] {
                    TOp::Rendezvous { kind, .. } => kind.as_str(),
                    _ => unreachable!(),
                })
                .collect();
            if pending.len() == w && kinds.len() == 1 {
                for r in &pending {
                    pc[*r] += 1;
                }
                continue;
            }
            let (line, kind) = match &traces[pending[0]][pc[pending[0]]] {
                TOp::Rendezvous { kind, line } => (*line, kind.clone()),
                _ => unreachable!(),
            };
            let finished: Vec<usize> =
                (0..w).filter(|r| done[*r]).collect();
            let msg = if kinds.len() > 1 {
                format!(
                    "ranks reach different rendezvous ({}) — every rank must execute \
                     the same collective sequence (world {w})",
                    kinds.iter().copied().collect::<Vec<_>>().join(" vs ")
                )
            } else {
                format!(
                    "ranks {pending:?} wait at `{kind}` but ranks {finished:?} already \
                     finished the schedule — the rendezvous can never complete \
                     (world {w})"
                )
            };
            return (Some(("mc-collective-divergence", line, msg)), max_depth);
        }
        // Some rank is stuck on a receive.
        for r in &pending {
            match &traces[*r][pc[*r]] {
                TOp::Recv { from, tag, line } => {
                    return (
                        Some((
                            "mc-deadlock",
                            *line,
                            format!(
                                "rank {r} blocks forever waiting for tag {tag:#x} from \
                                 rank {from} — no matching send can still happen \
                                 (world {w})"
                            ),
                        )),
                        max_depth,
                    );
                }
                TOp::RecvAny { tags, line } => {
                    return (
                        Some((
                            "mc-deadlock",
                            *line,
                            format!(
                                "rank {r} blocks forever in recv_any over {} tag(s) — \
                                 no matching send can still happen (world {w})",
                                tags.len()
                            ),
                        )),
                        max_depth,
                    );
                }
                _ => {}
            }
        }
        unreachable!("stall with no blocked receive and no rendezvous");
    }
}

// ---------------------------------------------------------------------------
// Per-unit driver
// ---------------------------------------------------------------------------

/// What the checker did with one protocol-bearing function.
#[derive(Clone, Debug)]
pub struct UnitReport {
    pub name: String,
    pub path: String,
    pub line: u32,
    /// Distinct flattened trace sets simulated across worlds 1-4.
    pub traces_explored: u64,
    /// Deepest any per-edge FIFO got across all simulations.
    pub max_buffer_depth: usize,
    /// Free variables enumerated over `0..world`.
    pub free_vars: Vec<String>,
    /// Set when the unit could not be simulated (with the reason); its
    /// schedule is then *not* verified.
    pub skipped: Option<String>,
}

/// The combined model-check result: findings plus the per-unit schedule
/// report (`--model-check` prints the latter; CI gates on the former).
#[derive(Clone, Debug, Default)]
pub struct McOutcome {
    pub diags: Vec<Diagnostic>,
    pub units: Vec<UnitReport>,
}

/// Can this function's ops form a closed protocol worth simulating?
/// One-directional helpers (send-only / recv-only, no rendezvous) are
/// building blocks verified through their callers — simulating them
/// alone would manufacture orphan-send noise.
fn eligible(f: &FnDef, bearing: &BTreeSet<String>) -> bool {
    fn scan(ops: &[Op], bearing: &BTreeSet<String>, s: &mut (bool, bool, bool)) {
        for op in ops {
            match op {
                Op::Send { .. } => s.0 = true,
                Op::Recv { .. } | Op::RecvAny { .. } => s.1 = true,
                Op::Rendezvous { .. } => s.2 = true,
                Op::Call { name, .. } if bearing.contains(name) => s.2 = true,
                Op::Call { .. } => {}
                Op::If { then, els, .. } => {
                    scan(then, bearing, s);
                    scan(els, bearing, s);
                }
                Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => {
                    scan(body, bearing, s)
                }
                Op::Match { arms, .. } => {
                    for arm in arms {
                        scan(arm, bearing, s);
                    }
                }
                _ => {}
            }
        }
    }
    let mut s = (false, false, false);
    scan(&f.ops, bearing, &mut s);
    (s.0 && s.1) || s.2
}

fn check_unit(
    path: &str,
    f: &FnDef,
    registry_env: &BTreeMap<String, u64>,
    bearing: &BTreeSet<String>,
) -> (UnitReport, Vec<(&'static str, u32, String)>) {
    let mut report = UnitReport {
        name: f.name.clone(),
        path: path.to_string(),
        line: f.line,
        traces_explored: 0,
        max_buffer_depth: 0,
        free_vars: Vec::new(),
        skipped: None,
    };
    let empty_free = BTreeMap::new();

    // Pass 1: branch-exhaustive free-variable collection.
    let mut collector = Flattener::new(
        0,
        MAX_WORLD,
        registry_env,
        &empty_free,
        &[],
        f,
        bearing,
        true,
    );
    collector.walk(&f.ops);
    if let Some((line, why)) = collector.skip {
        report.skipped = Some(format!("{why} (line {line})"));
        return (report, Vec::new());
    }
    let free: Vec<String> = collector.free.into_iter().collect();
    if free.len() > MAX_FREE_VARS {
        report.skipped = Some(format!(
            "{} unresolved parameters ({}) exceed the enumeration bound of {MAX_FREE_VARS}",
            free.len(),
            free.join(", ")
        ));
        return (report, Vec::new());
    }
    report.free_vars = free.clone();

    let mut rad = vec![1u32; f.n_sites as usize];
    fill_radixes(&f.ops, &mut rad);

    let mut findings: BTreeMap<(&'static str, u32), String> = BTreeMap::new();
    'worlds: for w in 1..=MAX_WORLD {
        let assigns = enumerate_assignments(&free, w);
        let cap = (VECTOR_BUDGET / assigns.len().max(1)).max(64);
        let vectors = enumerate_vectors(&rad, cap);
        let mut unique: BTreeSet<Vec<Vec<TOp>>> = BTreeSet::new();
        for free_env in &assigns {
            for choices in &vectors {
                let mut traces = Vec::with_capacity(w as usize);
                for r in 0..w {
                    let mut fl = Flattener::new(
                        r,
                        w,
                        registry_env,
                        free_env,
                        choices,
                        f,
                        bearing,
                        false,
                    );
                    fl.walk(&f.ops);
                    if let Some((line, why)) = fl.skip {
                        report.skipped =
                            Some(format!("{why} (line {line}, world {w})"));
                        break 'worlds;
                    }
                    traces.push(fl.trace);
                }
                unique.insert(traces);
            }
        }
        for traces in &unique {
            report.traces_explored += 1;
            let (finding, depth) = simulate(traces, w as usize);
            report.max_buffer_depth = report.max_buffer_depth.max(depth);
            if let Some((rule, line, msg)) = finding {
                findings
                    .entry((rule, line))
                    .or_insert_with(|| format!("fn `{}`: {msg}", f.name));
            }
        }
    }
    let out = findings
        .into_iter()
        .map(|((rule, line), msg)| (rule, line, msg))
        .collect();
    (report, out)
}

// ---------------------------------------------------------------------------
// Serving-plane static checks
// ---------------------------------------------------------------------------

/// Flattened (control-flow-ignored) protocol ops of one serve file,
/// resolved to tag *names* — the serve loops are tick-driven, so coverage
/// is a set property, not an ordering one.
#[derive(Default)]
struct ServeOps {
    /// `(tag name if syntactically evident, peer-expression vars, line)`.
    sends: Vec<(Option<String>, BTreeSet<String>, u32)>,
    recv_tags: Vec<(String, u32)>,
    recv_any_sets: Vec<(BTreeSet<String>, u32)>,
    purges: usize,
}

fn tag_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Var(n) => Some(n.clone()),
        _ => None,
    }
}

fn collect_serve_ops(fns: &[FnDef]) -> ServeOps {
    fn walk(ops: &[Op], f: &FnDef, out: &mut ServeOps) {
        for op in ops {
            match op {
                Op::Send { to, tag, line } => {
                    let mut vars = BTreeSet::new();
                    to.vars_into(&mut vars);
                    out.sends.push((tag_name(tag), vars, *line));
                }
                Op::Recv { tag, line, .. } => {
                    if let Some(n) = tag_name(tag) {
                        out.recv_tags.push((n, *line));
                    }
                }
                Op::RecvAny { tags, line } => {
                    let exprs = match tags {
                        RecvAnySrc::List(v) => Some(v.clone()),
                        RecvAnySrc::Ref(name) => f.tag_arrays.get(name).cloned(),
                    };
                    if let Some(exprs) = exprs {
                        let set: BTreeSet<String> =
                            exprs.iter().filter_map(tag_name).collect();
                        if !set.is_empty() {
                            out.recv_any_sets.push((set, *line));
                        }
                    }
                }
                Op::Purge { .. } => out.purges += 1,
                Op::If { then, els, .. } => {
                    walk(then, f, out);
                    walk(els, f, out);
                }
                Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => {
                    walk(body, f, out)
                }
                Op::Match { arms, .. } => {
                    for arm in arms {
                        walk(arm, f, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = ServeOps::default();
    for f in fns {
        walk(&f.ops, f, &mut out);
    }
    out
}

fn serve_checks(
    files: &[(String, Lexed, Vec<FnDef>)],
    diags: &mut Vec<Diagnostic>,
) {
    let mut per_file: Vec<(usize, ServeRole, ServeOps)> = Vec::new();
    for (idx, (path, _, fns)) in files.iter().enumerate() {
        if let Some(role) = serve_role(path) {
            per_file.push((idx, role, collect_serve_ops(fns)));
        }
    }
    // Receivable tag names per role.
    let mut recvable: BTreeMap<ServeRole, BTreeSet<String>> = BTreeMap::new();
    for (_, role, ops) in &per_file {
        let entry = recvable.entry(*role).or_default();
        entry.extend(ops.recv_tags.iter().map(|(n, _)| n.clone()));
        for (set, _) in &ops.recv_any_sets {
            entry.extend(set.iter().cloned());
        }
    }

    for (idx, _, ops) in &per_file {
        let (path, lexed, _) = &files[*idx];
        // mc-orphan-frame: every named frame must be receivable by its
        // target role — checked only when that role is present and
        // actually receives something (single-file fixtures stay quiet).
        for (tag, to_vars, line) in &ops.sends {
            let Some(tag) = tag else { continue };
            let Some(target) = send_target(path, to_vars) else { continue };
            let Some(rset) = recvable.get(&target).filter(|s| !s.is_empty()) else {
                continue;
            };
            if !rset.contains(tag) && !lexed.allowed("mc-orphan-frame", *line) {
                diags.push(Diagnostic {
                    path: path.clone(),
                    line: *line,
                    col: 1,
                    rule: "mc-orphan-frame",
                    message: format!(
                        "frame `{tag}` sent to the {target:?} role, but no \
                         {target:?} recv/recv_any ever matches that tag — the \
                         frame is dropped by the peer's demux"
                    ),
                });
            }
        }
    }

    // mc-fault-closure over replica files that model crashes.
    for (idx, role, ops) in &per_file {
        if *role != ServeRole::Replica {
            continue;
        }
        let (path, lexed, _) = &files[*idx];
        let crashed_line = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("Crashed"))
            .map(|t| t.line);
        let Some(crashed_line) = crashed_line else { continue };
        if ops.purges == 0 && !lexed.allowed("mc-fault-closure", crashed_line) {
            diags.push(Diagnostic {
                path: path.clone(),
                line: crashed_line,
                col: 1,
                rule: "mc-fault-closure",
                message: "replica models crashes but never calls purge_pending: \
                          frames buffered across the crash replay into the \
                          recovered schedule"
                    .to_string(),
            });
        }
        let has_recover = ops
            .sends
            .iter()
            .any(|(t, _, _)| t.as_deref().is_some_and(|n| n.contains("RECOVER")));
        if !has_recover && !lexed.allowed("mc-fault-closure", crashed_line) {
            diags.push(Diagnostic {
                path: path.clone(),
                line: crashed_line,
                col: 1,
                rule: "mc-fault-closure",
                message: "replica models crashes but never sends a RECOVER frame — \
                          the router cannot resync a recovered replica"
                    .to_string(),
            });
        }
        if let Some(maximal) = ops
            .recv_any_sets
            .iter()
            .max_by_key(|(set, _)| set.len())
            .map(|(set, _)| set.clone())
        {
            for (set, line) in &ops.recv_any_sets {
                if !set.is_subset(&maximal) && !lexed.allowed("mc-fault-closure", *line)
                {
                    diags.push(Diagnostic {
                        path: path.clone(),
                        line: *line,
                        col: 1,
                        rule: "mc-fault-closure",
                        message: format!(
                            "degraded recv_any set {{{}}} listens for frames the \
                             healthy set never accepts — recovery must shrink the \
                             listen set, not grow it",
                            set.iter().cloned().collect::<Vec<_>>().join(", ")
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dead tags
// ---------------------------------------------------------------------------

fn tag_uses(fns: &[FnDef], used: &mut BTreeSet<String>, any_ops: &mut bool) {
    fn walk(ops: &[Op], f: &FnDef, used: &mut BTreeSet<String>, any_ops: &mut bool) {
        for op in ops {
            match op {
                Op::Send { tag, .. } | Op::Recv { tag, .. } => {
                    *any_ops = true;
                    tag.vars_into(used);
                }
                Op::RecvAny { tags, .. } => {
                    *any_ops = true;
                    match tags {
                        RecvAnySrc::List(v) => {
                            for e in v {
                                e.vars_into(used);
                            }
                        }
                        RecvAnySrc::Ref(name) => {
                            if let Some(v) = f.tag_arrays.get(name) {
                                for e in v {
                                    e.vars_into(used);
                                }
                            }
                        }
                    }
                }
                Op::Rendezvous { .. } => *any_ops = true,
                Op::If { then, els, .. } => {
                    walk(then, f, used, any_ops);
                    walk(els, f, used, any_ops);
                }
                Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => {
                    walk(body, f, used, any_ops)
                }
                Op::Match { arms, .. } => {
                    for arm in arms {
                        walk(arm, f, used, any_ops);
                    }
                }
                _ => {}
            }
        }
    }
    for f in fns {
        walk(&f.ops, f, used, any_ops);
        for exprs in f.tag_arrays.values() {
            for e in exprs {
                e.vars_into(used);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Model-checks a file set (workspace-relative path, source). The same
/// function serves the workspace gate, single-fixture CLI runs, and the
/// in-memory injection tests.
pub fn model_check_files(files: &[(String, String)]) -> McOutcome {
    let lexed: Vec<(String, Lexed)> =
        files.iter().map(|(p, s)| (p.clone(), lex(s))).collect();

    // Tag registry: the first file carrying a `mod protocol` block.
    type Registry = (usize, Vec<(String, u64, u32)>);
    let mut registry: Option<Registry> = None;
    for (idx, (_, lx)) in lexed.iter().enumerate() {
        let entries = parse_registry(lx);
        if !entries.is_empty() {
            registry = Some((idx, entries));
            break;
        }
    }
    let registry_env: BTreeMap<String, u64> = registry
        .iter()
        .flat_map(|(_, e)| e.iter().map(|(n, v, _)| (n.clone(), *v)))
        .collect();

    // Extraction over both scopes. The registry file itself is never
    // extracted: comm internals multiplex over std channels whose
    // `.send()` is not the wire protocol.
    let mut extracted: Vec<(String, Lexed, Vec<FnDef>)> = Vec::new();
    for (idx, (path, lx)) in lexed.iter().enumerate() {
        if registry.as_ref().is_some_and(|(ri, _)| *ri == idx) {
            continue;
        }
        if sim_scope(path) || serve_role(path).is_some() {
            extracted.push((path.clone(), lx.clone(), extract_fns(lx)));
        }
    }

    // Protocol-bearing fixpoint over the simulation scope.
    let mut bearing: BTreeSet<String> = BTreeSet::new();
    let sim_fns: Vec<&FnDef> = extracted
        .iter()
        .filter(|(p, _, _)| sim_scope(p))
        .flat_map(|(_, _, fns)| fns.iter())
        .collect();
    for f in &sim_fns {
        if f.has_direct_protocol() {
            bearing.insert(f.name.clone());
        }
    }
    loop {
        let before = bearing.len();
        for f in &sim_fns {
            if !bearing.contains(&f.name)
                && f.calls().iter().any(|c| bearing.contains(c))
            {
                bearing.insert(f.name.clone());
            }
        }
        if bearing.len() == before {
            break;
        }
    }

    let mut outcome = McOutcome::default();
    for (path, lx, fns) in &extracted {
        if !sim_scope(path) {
            continue;
        }
        for f in fns {
            if !eligible(f, &bearing) {
                continue;
            }
            let (report, findings) = check_unit(path, f, &registry_env, &bearing);
            for (rule, line, msg) in findings {
                if !lx.allowed(rule, line) {
                    outcome.diags.push(Diagnostic {
                        path: path.clone(),
                        line,
                        col: 1,
                        rule,
                        message: msg,
                    });
                }
            }
            outcome.units.push(report);
        }
    }

    serve_checks(&extracted, &mut outcome.diags);

    // dead-tag: only meaningful when schedules were actually extracted
    // alongside the registry.
    if let Some((ri, entries)) = &registry {
        let mut used = BTreeSet::new();
        let mut any_ops = false;
        for (_, _, fns) in &extracted {
            tag_uses(fns, &mut used, &mut any_ops);
        }
        if any_ops {
            let (reg_path, reg_lexed) = &lexed[*ri];
            for (name, _, line) in entries {
                if !used.contains(name) && !reg_lexed.allowed("dead-tag", *line) {
                    outcome.diags.push(Diagnostic {
                        path: reg_path.clone(),
                        line: *line,
                        col: 1,
                        rule: "dead-tag",
                        message: format!(
                            "registry tag `{name}` is never sent or received by any \
                             extracted schedule; delete it or justify with \
                             `// lint: allow(dead-tag)`"
                        ),
                    });
                }
            }
        }
    }

    crate::schema::check_files(&lexed, &mut outcome.diags);
    crate::locks::check_files(&lexed, &mut outcome.diags);

    outcome.diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule,
        ))
    });
    outcome
        .units
        .sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    outcome
}

/// Walks the workspace and model-checks every product source file.
pub fn model_check_workspace(root: &std::path::Path) -> std::io::Result<McOutcome> {
    Ok(model_check_files(&crate::workspace_sources(root)?))
}

/// The human-readable `--model-check` report: per-unit schedule coverage,
/// then findings (rendered by the caller alongside).
pub fn render_report(outcome: &McOutcome) -> String {
    let mut s = String::new();
    let checked = outcome.units.iter().filter(|u| u.skipped.is_none()).count();
    let skipped = outcome.units.len() - checked;
    s.push_str(&format!(
        "model check: {checked} unit(s) verified for worlds 1-{MAX_WORLD}, \
         {skipped} skipped, {} finding(s)\n",
        outcome.diags.len()
    ));
    let mut current = "";
    for u in &outcome.units {
        if u.path != current {
            s.push_str(&format!("{}\n", u.path));
            current = &u.path;
        }
        match &u.skipped {
            Some(why) => {
                s.push_str(&format!(
                    "  {:>5}  fn {:<28} SKIPPED: {why}\n",
                    u.line, u.name
                ));
            }
            None => {
                let free = if u.free_vars.is_empty() {
                    String::new()
                } else {
                    format!("  [free: {}]", u.free_vars.join(", "))
                };
                s.push_str(&format!(
                    "  {:>5}  fn {:<28} {:>5} trace set(s), max buffer depth {}{free}\n",
                    u.line, u.name, u.traces_explored, u.max_buffer_depth
                ));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(path: &str, src: &str) -> McOutcome {
        model_check_files(&[(path.to_string(), src.to_string())])
    }

    const RING_OK: &str = r#"
        impl Comm {
            pub fn ring_shift(&self, payload: Bytes) -> Result<Bytes, CommError> {
                let tag = self.alloc_collective_tag();
                let next = (self.rank() + 1) % self.world();
                let prev = (self.rank() + self.world() - 1) % self.world();
                self.send(next, tag, payload)?;
                self.recv(prev, tag)
            }
        }
    "#;

    #[test]
    fn symmetric_ring_is_clean() {
        let out = check_one("crates/cluster/src/collectives.rs", RING_OK);
        assert!(out.diags.is_empty(), "{:?}", out.diags);
        assert_eq!(out.units.len(), 1);
        assert!(out.units[0].skipped.is_none());
        assert!(out.units[0].traces_explored >= 4);
    }

    #[test]
    fn recv_before_send_ring_deadlocks() {
        let src = r#"
            impl Comm {
                pub fn ring_shift(&self, payload: Bytes) -> Result<Bytes, CommError> {
                    let tag = self.alloc_collective_tag();
                    let next = (self.rank() + 1) % self.world();
                    let prev = (self.rank() + self.world() - 1) % self.world();
                    let got = self.recv(prev, tag)?;
                    self.send(next, tag, payload)?;
                    Ok(got)
                }
            }
        "#;
        let out = check_one("crates/cluster/src/collectives.rs", src);
        assert!(
            out.diags.iter().any(|d| d.rule == "mc-deadlock"),
            "{:?}",
            out.diags
        );
    }

    #[test]
    fn rank_conditional_collective_diverges() {
        let src = r#"
            fn train(ctx: &mut WorkerCtx) -> Result<(), CommError> {
                if ctx.comm.rank() == 0 {
                    ctx.comm.all_reduce_f64(&mut buf)?;
                }
                Ok(())
            }
        "#;
        let out = check_one("crates/quadrants/src/qd1.rs", src);
        assert!(
            out.diags.iter().any(|d| d.rule == "mc-collective-divergence"),
            "{:?}",
            out.diags
        );
    }

    #[test]
    fn unreceived_extra_send_is_orphan() {
        let src = r#"
            impl Comm {
                pub fn lopsided(&self, payload: Bytes) -> Result<(), CommError> {
                    let tag = self.alloc_collective_tag();
                    if self.rank() == 0 {
                        self.send(1, tag, payload.clone())?;
                        self.send(1, tag, payload)?;
                    } else if self.rank() == 1 {
                        let _ = self.recv(0, tag)?;
                    }
                    Ok(())
                }
            }
        "#;
        let out = check_one("crates/cluster/src/collectives.rs", src);
        assert!(
            out.diags.iter().any(|d| d.rule == "mc-orphan-send"),
            "{:?}",
            out.diags
        );
    }

    #[test]
    fn broadcast_root_becomes_free_var_and_checks_clean() {
        let src = r#"
            impl Comm {
                pub fn bcast(&self, root: usize, payload: Bytes) -> Result<Bytes, CommError> {
                    let tag = self.alloc_collective_tag();
                    if self.rank() == root {
                        for to in 0..self.world() {
                            if to != root {
                                self.send(to, tag, payload.clone())?;
                            }
                        }
                        Ok(payload)
                    } else {
                        self.recv(root, tag)
                    }
                }
            }
        "#;
        let out = check_one("crates/cluster/src/collectives.rs", src);
        assert!(out.diags.is_empty(), "{:?}", out.diags);
        assert_eq!(out.units[0].free_vars, vec!["root".to_string()]);
    }

    #[test]
    fn mc_findings_honor_pragmas() {
        let src = r#"
            fn train(ctx: &mut WorkerCtx) -> Result<(), CommError> {
                if ctx.comm.rank() == 0 {
                    // lint: allow(mc-collective-divergence) — test fixture
                    ctx.comm.all_reduce_f64(&mut buf)?;
                }
                Ok(())
            }
        "#;
        let out = check_one("crates/quadrants/src/qd1.rs", src);
        assert!(out.diags.is_empty(), "{:?}", out.diags);
    }
}
