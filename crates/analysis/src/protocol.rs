//! SPMD protocol checking: collective schedules and the tag registry.
//!
//! The simulated cluster runs every trainer as SPMD — one closure, W
//! threads. Collectives are blocking rendezvous: all ranks must reach the
//! same call in the same order or the run deadlocks. The two structural
//! hazards are:
//!
//! 1. **Rank-conditional collectives** — a collective nested under
//!    `if rank == …` / `match rank` executes on a strict subset of ranks;
//!    the rest block forever at the next rendezvous. (Rank-conditional
//!    *data* is fine — `let payload = if rank == owner { … }` with the
//!    broadcast *outside* the branch is the sanctioned pattern.)
//! 2. **Tag collisions** — point-to-point messages match on `(from, tag)`;
//!    two in-flight messages with the same manual tag can cross. Manual
//!    tags therefore live in one registry (`gbdt_cluster::protocol`), must
//!    be unique, and must stay below `COLLECTIVE_TAG_BASE` (collectives
//!    auto-allocate from the top bit down).
//!
//! The walker is brace-depth based and leans on a Rust grammar fact: struct
//! literals are forbidden in `if`/`while`/`match`-scrutinee position, so
//! the first `{` at parenthesis depth zero after the keyword *is* the
//! block opener.

use crate::lexer::{Lexed, Token};
use crate::rules::{is_collective_name, matching_brace, trainer_scope};
use crate::Diagnostic;

/// One collective call site inside a trainer function.
#[derive(Clone, Debug)]
pub struct CollectiveSite {
    pub func: String,
    pub callee: String,
    pub line: u32,
    pub rank_conditional: bool,
}

/// Extracts the static sequence of collective call sites from a lexed
/// trainer file, tagging each with whether it sits under a rank-conditional
/// branch. The sequence order is source order — which for SPMD code *is*
/// the schedule every rank executes.
pub fn collective_sequence(lexed: &Lexed) -> Vec<CollectiveSite> {
    let toks = &lexed.tokens;
    let mut sites = Vec::new();

    // One entry per open `{`: is the scope rank-conditional, and does it
    // open a function body (so we can pop the fn-name stack)?
    struct Scope {
        rank_conditional: bool,
        is_fn_body: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut fn_names: Vec<String> = Vec::new();
    // Set when `if`/`while`/`match` is seen; consumed by the next `{` at
    // paren depth 0. Carries "this condition mentions rank".
    let mut pending_cond: Option<bool> = None;
    // Set when the `}` of a rank-conditional `if` is followed by `else`:
    // the else-branch (or else-if chain) inherits the rank condition.
    let mut pending_else = false;
    // Set when `fn name` is seen; consumed by the body `{`.
    let mut pending_fn: Option<String> = None;
    let mut paren_depth = 0usize;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.ident() {
            Some("fn") => {
                if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                    pending_fn = Some(name.to_string());
                }
            }
            Some("if") | Some("while") | Some("match") => {
                // Scan the condition up to the block `{` (at paren depth 0
                // relative to here) and look for `rank`.
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut mentions_rank = false;
                while j < toks.len() {
                    let c = &toks[j];
                    if c.is_punct('(') || c.is_punct('[') {
                        depth += 1;
                    } else if c.is_punct(')') || c.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if c.is_punct('{') && depth == 0 {
                        break;
                    } else if c.is_punct(';') && depth == 0 {
                        // `if` used in a position we mis-read; bail out.
                        break;
                    }
                    if matches!(c.ident(), Some("rank") | Some("owner")) {
                        mentions_rank = true;
                    }
                    j += 1;
                }
                pending_cond = Some(mentions_rank || pending_else);
                pending_else = false;
            }
            Some(name) if is_collective_name(name) => {
                // A call site: followed by `(`, and not a definition
                // (`fn all_reduce…`) — definitions consumed `fn` above and
                // set pending_fn, but the name token still reaches here, so
                // check the previous token.
                let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !(i > 0 && toks[i - 1].ident() == Some("fn"));
                if is_call {
                    let conditional = scopes.iter().any(|s| s.rank_conditional);
                    sites.push(CollectiveSite {
                        func: fn_names.last().cloned().unwrap_or_else(|| "<file>".into()),
                        callee: name.to_string(),
                        line: t.line,
                        rank_conditional: conditional,
                    });
                }
            }
            _ => {}
        }

        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth = paren_depth.saturating_sub(1);
        } else if t.is_punct('{') {
            // Braces inside parens (closure bodies in arguments) are plain
            // scopes: they must not consume a pending `if` condition whose
            // block opener is still ahead. Enclosing-scope conditionality is
            // checked with `any()`, so inheritance needs no flag here.
            let rank_conditional = if paren_depth == 0 {
                let flag = pending_cond.take().unwrap_or(pending_else);
                pending_else = false;
                flag
            } else {
                false
            };
            let is_fn_body = if paren_depth == 0 {
                if let Some(name) = pending_fn.take() {
                    fn_names.push(name);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            scopes.push(Scope { rank_conditional, is_fn_body });
        } else if t.is_punct('}') {
            if let Some(s) = scopes.pop() {
                if s.is_fn_body {
                    fn_names.pop();
                }
                // `} else …` inherits this branch's rank-conditionality.
                if s.rank_conditional && toks.get(i + 1).and_then(Token::ident) == Some("else") {
                    pending_else = true;
                }
            }
        }
        i += 1;
    }
    sites
}

/// The `rank-branch-collective` rule: reject any collective whose call site
/// sits under a rank-conditional branch in a trainer file.
pub fn check_rank_branches(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !trainer_scope(path) {
        return;
    }
    for site in collective_sequence(lexed) {
        if site.rank_conditional && !lexed.allowed("rank-branch-collective", site.line) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: site.line,
                col: 1,
                rule: "rank-branch-collective",
                message: format!(
                    "collective `{}` in fn `{}` is nested under a rank-conditional branch: \
                     ranks that skip the branch never reach the rendezvous and the cluster \
                     deadlocks; hoist the collective out and make only the payload \
                     rank-dependent",
                    site.callee, site.func
                ),
            });
        }
    }
}

/// The `tag-registry` rule.
///
/// Outside `cluster/src/comm.rs`, any `const …TAG…: u64` is a stray manual
/// tag — it belongs in `gbdt_cluster::protocol`. Inside `comm.rs`, every
/// tag constant must sit in the `protocol` module, carry a unique value,
/// and stay below `COLLECTIVE_TAG_BASE` (1 << 63).
pub fn check_tag_registry(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !path.starts_with("crates/") {
        return;
    }
    let toks = &lexed.tokens;
    let in_comm = path == "crates/cluster/src/comm.rs";

    // Locate the `mod protocol { … }` span in comm.rs.
    let protocol_span = (0..toks.len()).find_map(|i| {
        if toks[i].ident() == Some("mod") && toks.get(i + 1).and_then(Token::ident) == Some("protocol")
        {
            let open = (i + 2..toks.len()).find(|&j| toks[j].is_punct('{'))?;
            Some((open, matching_brace(toks, open)))
        } else {
            None
        }
    });

    let mut seen: Vec<(String, String, u32)> = Vec::new(); // (value, name, line)
    for i in 0..toks.len() {
        if toks[i].ident() != Some("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else { continue };
        if !name.contains("TAG") || name == "COLLECTIVE_TAG_BASE" {
            continue;
        }
        let line = toks[i].line;
        if !in_comm {
            if !lexed.allowed("tag-registry", line) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line,
                    col: toks[i].col,
                    rule: "tag-registry",
                    message: format!(
                        "manual tag constant `{name}` outside the central registry; declare it \
                         in gbdt_cluster::protocol so uniqueness is checkable"
                    ),
                });
            }
            continue;
        }
        let inside = protocol_span.is_some_and(|(open, close)| i > open && i < close);
        if !inside {
            if !lexed.allowed("tag-registry", line) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line,
                    col: toks[i].col,
                    rule: "tag-registry",
                    message: format!(
                        "tag constant `{name}` in comm.rs but outside `mod protocol`; move it \
                         into the registry"
                    ),
                });
            }
            continue;
        }
        // `const NAME: u64 = <num> ;`
        let val = (i + 2..toks.len().min(i + 10)).find_map(|j| {
            if toks[j].is_punct('=') {
                if let crate::lexer::Tok::Num(n) = &toks.get(j + 1)?.tok {
                    return Some(n.clone());
                }
            }
            None
        });
        let Some(raw) = val else {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                col: toks[i].col,
                rule: "tag-registry",
                message: format!(
                    "tag `{name}` must be a literal u64 so the checker can prove uniqueness"
                ),
            });
            continue;
        };
        if let Some(v) = parse_u64(&raw) {
            if v >= 1u64 << 63 {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line,
                    col: toks[i].col,
                    rule: "tag-registry",
                    message: format!(
                        "tag `{name}` = {raw} collides with the auto-allocated collective tag \
                         space (>= COLLECTIVE_TAG_BASE)"
                    ),
                });
            }
            if let Some((_, other, _)) = seen.iter().find(|(sv, _, _)| parse_u64(sv) == Some(v)) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line,
                    col: toks[i].col,
                    rule: "tag-registry",
                    message: format!("tag `{name}` duplicates the value of `{other}`"),
                });
            }
        }
        seen.push((raw, name.to_string(), line));
    }
}

/// Parses `1234`, `0x7261_7274`, `0b…`, `0o…` with optional `u64` suffix.
pub(crate) fn parse_u64(raw: &str) -> Option<u64> {
    let s: String = raw.chars().filter(|c| *c != '_').collect();
    let s = s.strip_suffix("u64").unwrap_or(&s);
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = s.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else {
        s.parse().ok()
    }
}

/// Renders the per-function collective schedule of every trainer file —
/// the `--protocol` report. Reviewing a diff of this output is how a
/// protocol change gets eyeballed for symmetry.
pub fn protocol_report(files: &[(String, Lexed)]) -> String {
    let mut report = String::new();
    for (path, lexed) in files {
        if !trainer_scope(path) {
            continue;
        }
        let sites = collective_sequence(lexed);
        if sites.is_empty() {
            continue;
        }
        report.push_str(&format!("{path}\n"));
        let mut current = String::new();
        for s in &sites {
            if s.func != current {
                report.push_str(&format!("  fn {}:\n", s.func));
                current = s.func.clone();
            }
            let marker = if s.rank_conditional { "  [RANK-CONDITIONAL!]" } else { "" };
            report.push_str(&format!("    {:>5}  {}{}\n", s.line, s.callee, marker));
        }
    }
    report
}
