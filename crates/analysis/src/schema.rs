//! Wire-schema parity (`schema-parity`): encode/decode drift gates for
//! the two hand-rolled codecs (DESIGN.md item 15).
//!
//! Two engines, each scoped to the one file that owns a codec style:
//!
//! * **Struct framing** (`crates/serve/src/wire.rs`): for every struct
//!   with both an `encode` and a `decode` method, the encode body is
//!   lowered to a sequence of field widths — `self.f.to_le_bytes()` is a
//!   fixed write of the field's width, `(x as u32).to_le_bytes()` a
//!   fixed 4, `push(x as u8)` a fixed 1, writes inside a `for` loop are
//!   per-element streams — and the decode body to the mirror sequence
//!   from its cursor calls (`.u64()`, `.f32()`, `.take(n)`, `[u8; N]`
//!   conversions). The two sequences must match exactly, and the fields
//!   the encoder writes must appear in the same order the decoder's
//!   struct literal rebuilds them.
//!
//! * **Stride parity** (`crates/cluster/src/wire.rs`): the histogram
//!   codecs fix their layouts through byte strides (`chunks_exact(12)`,
//!   `12 * nnz`). Every stride an encode-side function uses must appear
//!   on the decode side too (and vice versa), with size helpers shared
//!   by both sides counting for both — a new layout added to only one
//!   side is exactly the drift that ships undecodable payloads.
//!
//! Anything the scanner cannot type (a field of unknown width, a struct
//! without both methods) is skipped, never guessed.

use crate::lexer::{Lexed, Token};
use crate::rules::{match_seq, matching_brace};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One wire item: a fixed-width write/read, or a per-element stream of
/// that width (inside a length-prefixed loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Item {
    Fixed(u32),
    Stream(u32),
}

fn render_items(items: &[Item]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|it| match it {
            Item::Fixed(w) => w.to_string(),
            Item::Stream(w) => format!("stream\u{d7}{w}"),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn prim_width(name: &str) -> Option<u32> {
    match name {
        "u8" | "i8" => Some(1),
        "u16" | "i16" => Some(2),
        "u32" | "i32" | "f32" => Some(4),
        "u64" | "i64" | "f64" => Some(8),
        _ => None,
    }
}

/// A struct field's wire type: a fixed-width scalar, or a `Vec` of them.
#[derive(Clone, Copy, Debug, Default)]
struct FieldTy {
    fixed: Option<u32>,
    elem: Option<u32>,
}

type Fields = Vec<(String, FieldTy)>;

/// Parses every `struct Name { ... }` into its ordered field list.
fn parse_structs(tokens: &[Token]) -> BTreeMap<String, Fields> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("struct") {
            if let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) {
                // Only brace-bodied structs; skip tuple/unit structs.
                if tokens.get(i + 2).is_some_and(|t| t.is_punct('{')) {
                    let close = matching_brace(tokens, i + 2);
                    out.insert(name.to_string(), parse_fields(&tokens[i + 3..close]));
                    i = close;
                }
            }
        }
        i += 1;
    }
    out
}

fn parse_fields(body: &[Token]) -> Fields {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes and visibility.
        if body[i].is_punct('#') {
            if body.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0usize;
                i += 1;
                while i < body.len() {
                    if body[i].is_punct('[') {
                        depth += 1;
                    } else if body[i].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            }
            i += 1;
            continue;
        }
        if body[i].ident() == Some("pub") {
            if body.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                i = skip_parens(body, i + 1);
            }
            i += 1;
            continue;
        }
        let (Some(name), true) = (
            body[i].ident(),
            body.get(i + 1).is_some_and(|t| t.is_punct(':')),
        ) else {
            i += 1;
            continue;
        };
        // Type tokens run to the next comma at angle depth 0.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < body.len() {
            if body[j].is_punct('<') {
                angle += 1;
            } else if body[j].is_punct('>') {
                angle -= 1;
            } else if body[j].is_punct(',') && angle <= 0 {
                break;
            }
            j += 1;
        }
        let ty_first = body[i + 2].ident().unwrap_or("");
        let ty = if let Some(w) = prim_width(ty_first) {
            FieldTy { fixed: Some(w), elem: None }
        } else if ty_first == "Vec" {
            let elem = body
                .get(i + 4)
                .and_then(|t| t.ident())
                .and_then(prim_width);
            FieldTy { fixed: None, elem }
        } else {
            FieldTy::default()
        };
        fields.push((name.to_string(), ty));
        i = j + 1;
    }
    fields
}

fn skip_parens(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

/// `(struct name, fn name, fn line, body token range)` for every method
/// in every inherent `impl` block.
fn impl_methods(tokens: &[Token]) -> Vec<(String, String, u32, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        j = skip_angles(tokens, j);
        let Some(ty) = tokens.get(j).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        j = skip_angles(tokens, j + 1);
        // Trait impls (`impl Trait for Type`) name the type after `for`.
        let ty = if tokens.get(j).and_then(|t| t.ident()) == Some("for") {
            let t = tokens.get(j + 1).and_then(|t| t.ident()).unwrap_or(ty);
            j = skip_angles(tokens, j + 2);
            t
        } else {
            ty
        };
        while j < tokens.len() && !tokens[j].is_punct('{') {
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let impl_close = matching_brace(tokens, j);
        let mut k = j + 1;
        while k < impl_close {
            if tokens[k].ident() == Some("fn") {
                if let Some(fname) = tokens.get(k + 1).and_then(|t| t.ident()) {
                    let line = tokens[k + 1].line;
                    let mut b = k + 2;
                    while b < impl_close && !tokens[b].is_punct('{') {
                        b += 1;
                    }
                    let close = matching_brace(tokens, b);
                    out.push((
                        ty.to_string(),
                        fname.to_string(),
                        line,
                        (b + 1, close),
                    ));
                    k = close;
                }
            }
            k += 1;
        }
        i = impl_close;
    }
    out
}

fn skip_angles(tokens: &[Token], mut j: usize) -> usize {
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
    }
    j
}

/// Loop spans inside a body: `(body_start, body_end, for_var, for_field)`.
/// `for_var`/`for_field` are set for `for v in &self.field` loops so
/// `v.to_le_bytes()` can be typed from the field.
fn loop_spans(
    tokens: &[Token],
    range: (usize, usize),
) -> Vec<(usize, usize, Option<String>, Option<String>)> {
    let mut spans = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        let kw = tokens[i].ident();
        if kw == Some("for") || kw == Some("while") || kw == Some("loop") {
            let mut var = None;
            let mut field = None;
            let mut b = i + 1;
            if kw == Some("loop") {
                // body opens immediately
            } else {
                let mut depth = 0i32;
                while b < range.1 {
                    if tokens[b].is_punct('(') || tokens[b].is_punct('[') {
                        depth += 1;
                    } else if tokens[b].is_punct(')') || tokens[b].is_punct(']') {
                        depth -= 1;
                    } else if tokens[b].is_punct('{') && depth == 0 {
                        break;
                    }
                    b += 1;
                }
                if kw == Some("for") {
                    var = tokens[i + 1..b]
                        .iter()
                        .filter_map(|t| t.ident())
                        .find(|n| !matches!(*n, "mut" | "_" | "ref"))
                        .map(str::to_string);
                    // `in & self . F` / `in self . F . iter ( )`
                    for k in i + 1..b.saturating_sub(2) {
                        if tokens[k].ident() == Some("self")
                            && tokens[k + 1].is_punct('.')
                        {
                            field = tokens[k + 2].ident().map(str::to_string);
                            break;
                        }
                    }
                }
            }
            if b < range.1 && tokens[b].is_punct('{') {
                let close = matching_brace(tokens, b);
                spans.push((b + 1, close, var, field));
                i = b + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

fn field_ty(fields: &Fields, name: &str) -> Option<FieldTy> {
    fields.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
}

/// Lowers an encode body to its item sequence + field write order.
/// `None` when any write can't be typed.
fn encode_items(
    tokens: &[Token],
    range: (usize, usize),
    fields: &Fields,
) -> Option<(Vec<Item>, Vec<String>)> {
    let loops = loop_spans(tokens, range);
    let in_loop = |i: usize| loops.iter().find(|(s, e, _, _)| (*s..*e).contains(&i));
    let mut items = Vec::new();
    let mut order: Vec<String> = Vec::new();
    let note = |items: &mut Vec<Item>, order: &mut Vec<String>, w, streaming, field: Option<&str>| {
        items.push(if streaming { Item::Stream(w) } else { Item::Fixed(w) });
        if let Some(f) = field {
            if !order.iter().any(|o| o == f) {
                order.push(f.to_string());
            }
        }
    };
    let mut i = range.0;
    while i < range.1 {
        // extend_from_slice(&self.F)  — raw byte stream of a Vec<u8>.
        if match_seq(tokens, i, &["extend_from_slice", "(", "&", "self", "."])
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(')'))
        {
            let f = tokens[i + 5].ident()?;
            let w = field_ty(fields, f)?.elem?;
            note(&mut items, &mut order, w, true, Some(f));
            i += 7;
            continue;
        }
        // push(... as u8 ...)
        if match_seq(tokens, i, &[".", "push", "("]) {
            let close = skip_parens(tokens, i + 2);
            let args = &tokens[i + 3..close];
            let cast = args.iter().enumerate().find(|(k, t)| {
                t.ident() == Some("as")
                    && args.get(k + 1).and_then(|t| t.ident()) == Some("u8")
            });
            if cast.is_some() {
                let field = (0..args.len().saturating_sub(2))
                    .find(|&k| {
                        args[k].ident() == Some("self") && args[k + 1].is_punct('.')
                    })
                    .and_then(|k| args[k + 2].ident());
                note(&mut items, &mut order, 1, in_loop(i).is_some(), field);
            }
            i = close + 1;
            continue;
        }
        // self.F.to_le_bytes()
        if match_seq(tokens, i, &["self", "."])
            && tokens.get(i + 2).and_then(|t| t.ident()).is_some()
            && match_seq(tokens, i + 3, &[".", "to_le_bytes"])
        {
            let f = tokens[i + 2].ident()?;
            let w = field_ty(fields, f)?.fixed?;
            note(&mut items, &mut order, w, in_loop(i).is_some(), Some(f));
            i += 5;
            continue;
        }
        // (... as uN).to_le_bytes()
        if tokens[i].ident() == Some("as")
            && match_seq(tokens, i + 2, &[")", ".", "to_le_bytes"])
        {
            if let Some(w) = tokens.get(i + 1).and_then(|t| t.ident()).and_then(prim_width)
            {
                note(&mut items, &mut order, w, in_loop(i).is_some(), None);
                i += 5;
                continue;
            }
        }
        // v.to_le_bytes() for the var of `for v in &self.F`
        if let Some(name) = tokens[i].ident() {
            if match_seq(tokens, i + 1, &[".", "to_le_bytes"]) {
                if let Some((_, _, Some(var), Some(f))) = in_loop(i) {
                    if var == name {
                        let w = field_ty(fields, f)?.elem?;
                        note(&mut items, &mut order, w, true, Some(f));
                        i += 3;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    Some((items, order))
}

const CURSOR_READS: &[(&str, u32)] =
    &[("u8", 1), ("u16", 2), ("u32", 4), ("u64", 8), ("f32", 4), ("f64", 8)];

/// Lowers a decode body: cursor reads + the struct literal's field order.
fn decode_items(
    tokens: &[Token],
    range: (usize, usize),
    struct_name: &str,
) -> (Vec<Item>, Vec<String>) {
    let loops = loop_spans(tokens, range);
    let in_loop = |i: usize| loops.iter().any(|(s, e, _, _)| (*s..*e).contains(&i));
    let mut items = Vec::new();
    let mut order = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        if tokens[i].is_punct('.') {
            if let Some(m) = tokens.get(i + 1).and_then(|t| t.ident()) {
                if let Some((_, w)) = CURSOR_READS.iter().find(|(n, _)| *n == m) {
                    if match_seq(tokens, i + 2, &["(", ")"]) {
                        items.push(if in_loop(i) {
                            Item::Stream(*w)
                        } else {
                            Item::Fixed(*w)
                        });
                        i += 4;
                        continue;
                    }
                }
                if m == "take" && tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    items.push(Item::Stream(1));
                    i = skip_parens(tokens, i + 2) + 1;
                    continue;
                }
            }
        }
        // [u8; N] — a fixed array conversion.
        if match_seq(tokens, i, &["[", "u8", ";"]) {
            if let Some(n) = tokens
                .get(i + 3)
                .and_then(|t| match &t.tok {
                    crate::lexer::Tok::Num(raw) => crate::protocol::parse_u64(raw),
                    _ => None,
                })
            {
                items.push(Item::Fixed(n as u32));
                i += 5;
                continue;
            }
        }
        // The rebuild literal: `StructName { f1, f2: ..., ... }`.
        if tokens[i].ident() == Some(struct_name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
            && order.is_empty()
        {
            let close = matching_brace(tokens, i + 1);
            let mut depth = 0i32;
            let mut k = i + 2;
            let mut at_field = true;
            while k < close {
                let t = &tokens[k];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 {
                    if t.is_punct(',') {
                        at_field = true;
                    } else if at_field {
                        if let Some(f) = t.ident() {
                            order.push(f.to_string());
                        }
                        at_field = false;
                    }
                }
                k += 1;
            }
        }
        i += 1;
    }
    (items, order)
}

fn check_serve_wire(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    let structs = parse_structs(tokens);
    let methods = impl_methods(tokens);
    for (name, fields) in &structs {
        let enc = methods
            .iter()
            .find(|(ty, f, _, _)| ty == name && f == "encode");
        let dec = methods
            .iter()
            .find(|(ty, f, _, _)| ty == name && f == "decode");
        let (Some((_, _, _, enc_range)), Some((_, _, dec_line, dec_range))) = (enc, dec)
        else {
            continue;
        };
        let Some((enc_items, enc_order)) = encode_items(tokens, *enc_range, fields)
        else {
            continue;
        };
        let (dec_items, dec_order) = decode_items(tokens, *dec_range, name);
        if lexed.allowed("schema-parity", *dec_line) {
            continue;
        }
        if enc_items != dec_items {
            out.push(Diagnostic {
                path: path.to_string(),
                line: *dec_line,
                col: 1,
                rule: "schema-parity",
                message: format!(
                    "`{name}` wire widths disagree: encode writes {} but decode \
                     reads {}",
                    render_items(&enc_items),
                    render_items(&dec_items)
                ),
            });
        }
        // Field order only matters for fields both sides name.
        let enc_named: Vec<&String> =
            enc_order.iter().filter(|f| dec_order.contains(f)).collect();
        let dec_named: Vec<&String> =
            dec_order.iter().filter(|f| enc_order.contains(f)).collect();
        if enc_named != dec_named {
            out.push(Diagnostic {
                path: path.to_string(),
                line: *dec_line,
                col: 1,
                rule: "schema-parity",
                message: format!(
                    "`{name}` field order disagrees: encode writes [{}] but decode \
                     rebuilds [{}]",
                    enc_order.join(", "),
                    dec_order.join(", ")
                ),
            });
        }
    }
}

/// Byte strides (2/4/8/12/16) a function commits to, via
/// `chunks_exact[_mut](N)` or a `N *` / `* N` size expression.
fn fn_strides(tokens: &[Token], range: (usize, usize)) -> BTreeSet<u64> {
    const STRIDES: &[u64] = &[2, 4, 8, 12, 16];
    let mut out = BTreeSet::new();
    for i in range.0..range.1 {
        if let crate::lexer::Tok::Num(raw) = &tokens[i].tok {
            let Some(n) = crate::protocol::parse_u64(raw) else { continue };
            if !STRIDES.contains(&n) {
                continue;
            }
            let by_mul = (i > range.0 && tokens[i - 1].is_punct('*'))
                || tokens.get(i + 1).is_some_and(|t| t.is_punct('*'));
            let by_chunks = i >= 2
                && tokens[i - 1].is_punct('(')
                && tokens[i - 2]
                    .ident()
                    .is_some_and(|m| m == "chunks_exact" || m == "chunks_exact_mut");
            if by_mul || by_chunks {
                out.insert(n);
            }
        }
    }
    out
}

fn check_cluster_wire(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    // (side, fn line, strides): 0 = encode, 1 = decode, 2 = shared.
    let mut enc: BTreeMap<u64, u32> = BTreeMap::new();
    let mut dec: BTreeMap<u64, u32> = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        let line = tokens[i + 1].line;
        let mut b = i + 2;
        while b < tokens.len() && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
            b += 1;
        }
        if b >= tokens.len() || tokens[b].is_punct(';') {
            i = b;
            continue;
        }
        let close = matching_brace(tokens, b);
        let strides = fn_strides(tokens, (b + 1, close));
        let is_enc = name.starts_with("encode") || name.ends_with("_to_bytes");
        let is_dec = name.starts_with("decode")
            || name.starts_with("bytes_to")
            || name.starts_with("for_each")
            || name == "classify";
        for s in strides {
            if is_enc || !is_dec {
                enc.entry(s).or_insert(line);
            }
            if is_dec || !is_enc {
                dec.entry(s).or_insert(line);
            }
        }
        i = close;
    }
    for (set, other, side, peer) in
        [(&enc, &dec, "encode", "decode"), (&dec, &enc, "decode", "encode")]
    {
        for (&stride, &line) in set.iter() {
            if !other.contains_key(&stride) && !lexed.allowed("schema-parity", line) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line,
                    col: 1,
                    rule: "schema-parity",
                    message: format!(
                        "{side} side commits to a {stride}-byte stride that no \
                         {peer}-side function handles — a layout only one side \
                         of the wire understands"
                    ),
                });
            }
        }
    }
}

/// Runs both parity engines over their owning files.
pub fn check_files(files: &[(String, Lexed)], out: &mut Vec<Diagnostic>) {
    for (path, lexed) in files {
        if path.ends_with("serve/src/wire.rs") {
            check_serve_wire(path, lexed, out);
        } else if path.ends_with("cluster/src/wire.rs") {
            check_cluster_wire(path, lexed, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_files(&[(path.to_string(), lex(src))], &mut out);
        out
    }

    #[test]
    fn matched_struct_codec_is_clean() {
        let src = r#"
            pub struct Frame { pub id: u64, pub n: u32, pub rows: Vec<f32> }
            impl Frame {
                pub fn encode(&self) -> Vec<u8> {
                    let mut out = Vec::new();
                    out.extend_from_slice(&self.id.to_le_bytes());
                    out.extend_from_slice(&self.n.to_le_bytes());
                    for v in &self.rows {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    out
                }
                pub fn decode(bytes: &[u8]) -> Result<Self, String> {
                    let mut r = Cursor { bytes, pos: 0 };
                    let id = r.u64()?;
                    let n = r.u32()?;
                    let mut rows = Vec::new();
                    for _ in 0..n {
                        rows.push(r.f32()?);
                    }
                    Ok(Frame { id, n, rows })
                }
            }
        "#;
        assert!(check("crates/serve/src/wire.rs", src).is_empty());
    }

    #[test]
    fn width_drift_is_flagged() {
        let src = r#"
            pub struct Frame { pub id: u64, pub n: u32 }
            impl Frame {
                pub fn encode(&self) -> Vec<u8> {
                    let mut out = Vec::new();
                    out.extend_from_slice(&self.id.to_le_bytes());
                    out.extend_from_slice(&self.n.to_le_bytes());
                    out
                }
                pub fn decode(bytes: &[u8]) -> Result<Self, String> {
                    let mut r = Cursor { bytes, pos: 0 };
                    let id = r.u64()?;
                    let n = r.u64()? as u32;
                    Ok(Frame { id, n })
                }
            }
        "#;
        let out = check("crates/serve/src/wire.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "schema-parity");
    }

    #[test]
    fn field_order_drift_is_flagged() {
        let src = r#"
            pub struct Frame { pub a: u32, pub b: u32 }
            impl Frame {
                pub fn encode(&self) -> Vec<u8> {
                    let mut out = Vec::new();
                    out.extend_from_slice(&self.a.to_le_bytes());
                    out.extend_from_slice(&self.b.to_le_bytes());
                    out
                }
                pub fn decode(bytes: &[u8]) -> Result<Self, String> {
                    let mut r = Cursor { bytes, pos: 0 };
                    let b = r.u32()?;
                    let a = r.u32()?;
                    Ok(Frame { b, a })
                }
            }
        "#;
        let out = check("crates/serve/src/wire.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("field order"));
    }

    #[test]
    fn one_sided_stride_is_flagged() {
        let src = r#"
            fn encode_pairs(buf: &[f64]) -> Vec<u8> {
                let mut out = Vec::with_capacity(buf.len() * 12);
                out
            }
            fn decode_pairs(bytes: &[u8]) -> Vec<f64> {
                let mut out = Vec::new();
                for ch in bytes.chunks_exact(8) {
                    let _ = ch;
                }
                out
            }
        "#;
        let out = check("crates/cluster/src/wire.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
    }
}
