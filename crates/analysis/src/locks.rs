//! Lock-order analysis over the serve plane (`lock-order`,
//! DESIGN.md item 15).
//!
//! The serving path mixes an `RwLock`-guarded model slot with scoring
//! pool joins; a second lock acquired while the first is held creates an
//! ordering commitment, and two call paths committing to opposite orders
//! can deadlock under concurrent traffic even though each path is
//! correct alone. This pass scans every `crates/serve/src` function for
//! `.read()` / `.write()` / `.lock()` acquisitions, names each lock by
//! its receiver chain (`self.current`, `slot.inner`), and
//! over-approximates every guard as held to the end of its enclosing
//! block (temporaries and scrutinee guards included — lifetimes only
//! ever end *earlier* than that, so the graph gains edges, never loses
//! them). An edge `A -> B` means some function acquires `B` while
//! holding `A`; any cycle in the resulting graph — including the
//! 1-cycle of re-entering a lock already held — is a finding.

use crate::lexer::{Lexed, Token};
use crate::rules::{match_seq, matching_brace};
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition: the named lock, where, and how far the guard's
/// enclosing block runs.
struct Acq {
    node: String,
    idx: usize,
    line: u32,
    scope_end: usize,
}

/// The receiver chain feeding `.read()` at `dot` (the `.` token),
/// walked backwards: `self . current . write` → `self.current`.
fn receiver_chain(tokens: &[Token], dot: usize) -> Option<String> {
    let mut parts = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 || !tokens[j].is_punct('.') {
            break;
        }
        let Some(name) = tokens.get(j.checked_sub(1)?).and_then(|t| t.ident()) else {
            break;
        };
        parts.push(name.to_string());
        j -= 2;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

fn acquisitions(tokens: &[Token], range: (usize, usize)) -> Vec<Acq> {
    let mut out = Vec::new();
    // Stack of open-brace indices gives each acquisition its enclosing
    // block.
    let mut braces: Vec<usize> = Vec::new();
    for i in range.0..range.1 {
        if tokens[i].is_punct('{') {
            braces.push(i);
        } else if tokens[i].is_punct('}') {
            braces.pop();
        } else if tokens[i].is_punct('.') {
            let is_acq = tokens
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|m| matches!(m, "read" | "write" | "lock"))
                && match_seq(tokens, i + 2, &["(", ")"]);
            if !is_acq {
                continue;
            }
            let Some(node) = receiver_chain(tokens, i) else { continue };
            let scope_end = braces
                .last()
                .map(|&open| matching_brace(tokens, open))
                .unwrap_or(range.1);
            out.push(Acq { node, idx: i, line: tokens[i + 1].line, scope_end });
        }
    }
    out
}

/// Functions as `(line, body range)` pairs; nested fns fold into their
/// parent, which only widens guard scopes.
fn fn_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("fn") {
            let mut b = i + 1;
            while b < tokens.len() && !tokens[b].is_punct('{') && !tokens[b].is_punct(';')
            {
                b += 1;
            }
            if b < tokens.len() && tokens[b].is_punct('{') {
                let close = matching_brace(tokens, b);
                out.push((b + 1, close));
                i = close;
            } else {
                i = b;
            }
        }
        i += 1;
    }
    out
}

/// Checks the serve-plane lock graph across `files`; every edge carries
/// the site that created it so findings point at real code.
pub fn check_files(files: &[(String, Lexed)], out: &mut Vec<Diagnostic>) {
    // edge (A, B) -> first (path, line) acquiring B under A.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (path, lexed) in files {
        if !path.starts_with("crates/serve/src/") {
            continue;
        }
        for body in fn_bodies(&lexed.tokens) {
            let acqs = acquisitions(&lexed.tokens, body);
            for (ai, a) in acqs.iter().enumerate() {
                for b in &acqs[ai + 1..] {
                    if b.idx >= a.scope_end {
                        break;
                    }
                    if a.node == b.node {
                        if !lexed.allowed("lock-order", b.line) {
                            out.push(Diagnostic {
                                path: path.clone(),
                                line: b.line,
                                col: 1,
                                rule: "lock-order",
                                message: format!(
                                    "`{}` is re-acquired while a guard on it may \
                                     still be live (first taken on line {}) — \
                                     self-deadlock under a writer",
                                    a.node, a.line
                                ),
                            });
                        }
                    } else {
                        edges
                            .entry((a.node.clone(), b.node.clone()))
                            .or_insert((path.clone(), b.line));
                    }
                }
            }
        }
    }

    // Any cycle in the order graph is a latent deadlock. The graph is a
    // handful of nodes; DFS from every node suffices.
    let nodes: BTreeSet<&String> = edges.keys().map(|(a, _)| a).collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in nodes {
        let mut stack = vec![(start, vec![start.clone()])];
        while let Some((at, trail)) = stack.pop() {
            for ((a, b), (path, line)) in &edges {
                if a != at {
                    continue;
                }
                if b == start {
                    let mut cycle = trail.clone();
                    cycle.sort();
                    if reported.insert(cycle) {
                        let lexed = files
                            .iter()
                            .find(|(p, _)| p == path)
                            .map(|(_, l)| l);
                        if lexed.is_none_or(|l| !l.allowed("lock-order", *line)) {
                            out.push(Diagnostic {
                                path: path.clone(),
                                line: *line,
                                col: 1,
                                rule: "lock-order",
                                message: format!(
                                    "lock-order cycle: {} -> {b} closes back to \
                                     `{b}` — two call paths commit to opposite \
                                     acquisition orders",
                                    trail.join(" -> ")
                                ),
                            });
                        }
                    }
                } else if !trail.contains(b) {
                    let mut t = trail.clone();
                    t.push(b.clone());
                    stack.push((b, t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_files(&[("crates/serve/src/pool.rs".to_string(), lex(src))], &mut out);
        out
    }

    #[test]
    fn separate_functions_are_clean() {
        let src = r#"
            fn a(&self) { let g = self.slot.read().unwrap(); }
            fn b(&self) { let g = self.pool.lock().unwrap(); }
        "#;
        assert!(check(src).is_empty());
    }

    #[test]
    fn opposite_orders_cycle() {
        let src = r#"
            fn a(&self) {
                let g = self.slot.read().unwrap();
                let h = self.pool.lock().unwrap();
            }
            fn b(&self) {
                let h = self.pool.lock().unwrap();
                let g = self.slot.write().unwrap();
            }
        "#;
        let out = check(src);
        assert!(
            out.iter().any(|d| d.rule == "lock-order"
                && d.message.contains("cycle")),
            "{out:?}"
        );
    }

    #[test]
    fn reentrant_same_lock_is_flagged() {
        let src = r#"
            fn a(&self) {
                let g = self.slot.read().unwrap();
                let h = self.slot.write().unwrap();
            }
        "#;
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("re-acquired"));
    }

    #[test]
    fn inner_block_scope_releases() {
        let src = r#"
            fn a(&self) {
                { let g = self.slot.read().unwrap(); }
                let h = self.pool.lock().unwrap();
            }
            fn b(&self) {
                { let h = self.pool.lock().unwrap(); }
                let g = self.slot.write().unwrap();
            }
        "#;
        assert!(check(src).is_empty());
    }
}
