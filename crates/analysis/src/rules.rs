//! The deny-by-default rule catalog.
//!
//! Every rule here is keyed to a correctness claim an earlier PR made
//! dynamically; the catalog turns sampled evidence into a structural
//! guarantee. See DESIGN.md §4.10 for the rule-by-rule rationale.
//!
//! Scoping is path-based: each rule names the crates/files where its hazard
//! can actually reach wire bytes, model output, or the SPMD schedule.
//! Escape hatches are per-line `// lint: allow(<rule>) — why` pragmas; a
//! pragma without a justification text still works, but review should
//! reject it.

use crate::lexer::{Lexed, Token};
use crate::protocol;
use crate::Diagnostic;

/// `(id, summary)` for every rule the engine enforces.
pub const RULES: &[(&str, &str)] = &[
    (
        "map-iteration",
        "HashMap/HashSet iteration order is process-random and must never reach \
         messages, model output, or stats in deterministic paths",
    ),
    (
        "wall-clock",
        "Instant/SystemTime reads are banned outside cluster::stats, cluster::cost, \
         and the bench crate — wall-clock must feed modelled stats only",
    ),
    (
        "ambient-env",
        "thread identity and process environment reads are banned in trainer paths",
    ),
    (
        "panic-call",
        "panic!/unimplemented!/todo! are banned in the comm layer — every fault \
         must surface as a typed CommError",
    ),
    (
        "slice-index",
        "unchecked slice indexing in the comm layer can panic mid-collective; use \
         get() or justify the bound with a pragma",
    ),
    (
        "rank-branch-collective",
        "a collective inside a rank-conditional branch is the canonical SPMD \
         deadlock: some ranks enter, the rest never arrive",
    ),
    (
        "tag-registry",
        "manual point-to-point tags must live in gbdt_cluster::protocol, be unique, \
         and stay below COLLECTIVE_TAG_BASE",
    ),
    (
        "fault-point",
        "every per-tree trainer loop must poll fault_point so injected crashes and \
         cancellation land at recoverable boundaries",
    ),
    (
        "comm-unwrap",
        "CommError results must propagate with ? — unwrap/expect on a comm call \
         turns a recoverable fault into a worker abort",
    ),
    (
        "unsafe-outside-simd",
        "the `unsafe` keyword is confined to gbdt-core::kernels::simd, the one \
         audited module; everywhere else memory safety stays compiler-checked",
    ),
    (
        "stale-pragma",
        "a `// lint: allow(...)` pragma that suppresses zero findings (or names \
         an unknown rule) — allowlists must not outlive the code they excuse",
    ),
];

// ---------------------------------------------------------------------------
// Path scopes
// ---------------------------------------------------------------------------

/// Files where nondeterministic map iteration can reach wire bytes or model
/// output: all of core/quadrants/vero, plus the cluster modules that build
/// messages (wire codecs, collectives, parameter server), plus the serving
/// thread pool (chunk scheduling there must never depend on hash order, or
/// the parallel scorer's bit-identity contract dies). The rest of the serve
/// crate stays out of scope — router.rs legitimately iterates replica maps
/// for bookkeeping that never reaches a response byte.
fn map_iteration_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/quadrants/src")
        || path.starts_with("crates/vero/src")
        || matches!(
            path,
            "crates/cluster/src/wire.rs"
                | "crates/cluster/src/collectives.rs"
                | "crates/cluster/src/ps.rs"
                | "crates/serve/src/pool.rs"
        )
}

/// Wall-clock reads are the *business* of the stats/cost layers and the
/// bench harness; everywhere else they are a determinism hazard.
fn wall_clock_scope(path: &str) -> bool {
    // serve/stats.rs is the serving layer's sanctioned stopwatch; the
    // traversal kernels and request loop around it stay clock-free so a
    // timing read can never sit next to the bit-identity contract.
    !(path == "crates/cluster/src/stats.rs"
        || path == "crates/cluster/src/cost.rs"
        || path == "crates/serve/src/stats.rs"
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/analysis/"))
}

/// Trainer paths: everything that executes between dataset and model.
fn ambient_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/quadrants/src")
        || path.starts_with("crates/vero/src")
        || path.starts_with("crates/partition/src")
        || path.starts_with("crates/cluster/src")
}

/// The comm layer proper, where a panic strands every other worker.
fn comm_layer_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/cluster/src/comm.rs"
            | "crates/cluster/src/collectives.rs"
            | "crates/cluster/src/ps.rs"
            | "crates/cluster/src/fault.rs"
    )
}

/// The SPMD trainer entry points whose collective schedules must be
/// rank-symmetric.
pub(crate) fn trainer_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/quadrants/src/qd1.rs"
            | "crates/quadrants/src/qd2.rs"
            | "crates/quadrants/src/qd3.rs"
            | "crates/quadrants/src/qd4.rs"
            | "crates/quadrants/src/yggdrasil.rs"
            | "crates/quadrants/src/featpar.rs"
            | "crates/vero/src/system.rs"
    )
}

/// Distributed trainers with a per-tree loop (single-node training has no
/// fault machinery to poll; vero delegates its loop to qd4).
fn fault_point_scope(path: &str) -> bool {
    trainer_scope(path) && path != "crates/vero/src/system.rs"
}

/// Where `.unwrap()`/`.expect()` on a comm result would bypass supervision:
/// the trainers, their shared helpers, and the cluster crate itself.
fn comm_unwrap_scope(path: &str) -> bool {
    trainer_scope(path)
        || path == "crates/quadrants/src/common.rs"
        || path.starts_with("crates/cluster/src")
        || path.starts_with("crates/partition/src")
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Matches a token sequence at `i`. Each pattern element is an identifier
/// (`"now"`) or a single punctuation character (`":"`).
pub(crate) fn match_seq(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let t = &tokens[i + k];
        let mut chars = p.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) if !c.is_ascii_alphanumeric() && c != '_' => t.is_punct(c),
            _ => t.ident() == Some(p),
        }
    })
}

/// Names a collective call site: any method in the blocking-rendezvous
/// family. Prefix-matched so codec variants (`all_reduce_f64_codec`) and
/// helpers built directly on collectives (`all_reduce_stats`) all count.
pub(crate) fn is_collective_name(name: &str) -> bool {
    const PREFIXES: &[&str] = &[
        "broadcast",
        "gather",
        "all_gather",
        "all_reduce",
        "reduce_scatter",
        "reduce_to_root",
        "ps_push",
    ];
    PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Index of the `}` matching the `{` at `open`, or `tokens.len()`.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    j
}

fn push_diag(
    out: &mut Vec<Diagnostic>,
    lexed: &Lexed,
    path: &str,
    tok: &Token,
    rule: &'static str,
    message: String,
) {
    if !lexed.allowed(rule, tok.line) {
        out.push(Diagnostic {
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: map-iteration
// ---------------------------------------------------------------------------

/// Order-dependent consumption of a `HashMap`/`HashSet`.
///
/// Pass 1 harvests identifiers bound or typed as hash collections
/// (`x: HashMap<..>`, `let mut x = HashMap::new()`); pass 2 flags
/// `.iter()/.keys()/.values()/.drain()/.into_iter()` on them and
/// `for _ in &x` loops — unless the surrounding statements sort the result
/// (an ident starting with `sort` within the same or next statement).
fn check_map_iteration(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !map_iteration_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    let mut maps: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if matches!(t.ident(), Some("HashMap") | Some("HashSet")) {
            if let Some(name) = map_binding_name(toks, i) {
                if !maps.contains(&name) {
                    maps.push(name);
                }
            }
        }
    }
    if maps.is_empty() {
        return;
    }
    const ITER_METHODS: &[&str] =
        &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "into_keys", "into_values"];
    for i in 0..toks.len() {
        // `<map> . <iter-method> (`
        if let Some(name) = toks[i].ident() {
            if maps.iter().any(|m| m == name)
                && match_seq(toks, i + 1, &["."])
                && toks.get(i + 2).and_then(Token::ident).is_some_and(|m| ITER_METHODS.contains(&m))
                && match_seq(toks, i + 3, &["("])
                && !sorted_nearby(toks, i)
            {
                let method = toks[i + 2].ident().unwrap_or("");
                push_diag(
                    out,
                    lexed,
                    path,
                    &toks[i],
                    "map-iteration",
                    format!(
                        "`{name}.{method}()` iterates a hash collection in nondeterministic \
                         order; sort the result, use a BTreeMap, or justify with \
                         `// lint: allow(map-iteration)`"
                    ),
                );
            }
        }
        // `for <pat> in [&[mut]] <map> {`
        if toks[i].ident() == Some("for") {
            if let Some((j, name)) = for_loop_over(toks, i, &maps) {
                if !sorted_nearby(toks, j) {
                    push_diag(
                        out,
                        lexed,
                        path,
                        &toks[j],
                        "map-iteration",
                        format!(
                            "`for _ in &{name}` iterates a hash collection in \
                             nondeterministic order"
                        ),
                    );
                }
            }
        }
    }
}

/// For a `HashMap`/`HashSet` ident at `i`, walks backwards past the
/// `std :: collections ::` qualification and returns the identifier being
/// bound (`x : HashMap`, `x = HashMap::new()`, `x : & HashMap`).
fn map_binding_name(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // Skip the path prefix: `std :: collections ::`.
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        j -= 2;
        if j >= 1 && toks[j - 1].ident().is_some() {
            j -= 1;
        }
    }
    if j == 0 {
        return None;
    }
    let before = &toks[j - 1];
    let mut k = j - 1;
    if before.is_punct('&') || before.ident() == Some("mut") {
        // `x: &HashMap` / `x: &mut HashMap`
        while k > 0 && (toks[k].is_punct('&') || toks[k].ident() == Some("mut")) {
            k -= 1;
        }
    }
    if toks[k].is_punct(':') || toks[k].is_punct('=') {
        return toks.get(k.checked_sub(1)?)?.ident().map(String::from);
    }
    None
}

/// If the `for` loop at `i` iterates (a reference to) one of `maps`,
/// returns the map token index and name. The iterated expression must be
/// exactly `[&[mut]] <map>` — `map.len()` etc. never match.
fn for_loop_over(toks: &[Token], i: usize, maps: &[String]) -> Option<(usize, String)> {
    // Find `in` before the body `{` (patterns contain no braces).
    let mut j = i + 1;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].ident() == Some("in") {
            let mut k = j + 1;
            while k < toks.len() && (toks[k].is_punct('&') || toks[k].ident() == Some("mut")) {
                k += 1;
            }
            let name = toks.get(k)?.ident()?;
            if maps.iter().any(|m| m == name) && toks.get(k + 1).is_some_and(|t| t.is_punct('{')) {
                return Some((k, name.to_string()));
            }
            return None;
        }
        j += 1;
    }
    None
}

/// Whether an ident starting with `sort` appears between the flagged token
/// and the end of the *next* statement — the "immediately sorted" escape,
/// covering both `…collect(); v.sort();` and single-expression chains.
fn sorted_nearby(toks: &[Token], i: usize) -> bool {
    let mut semis = 0;
    for t in toks.iter().skip(i) {
        if t.is_punct(';') {
            semis += 1;
            if semis == 2 {
                return false;
            }
        }
        if t.ident().is_some_and(|id| id.starts_with("sort")) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules: wall-clock, ambient-env, panic-call
// ---------------------------------------------------------------------------

fn check_wall_clock(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !wall_clock_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        for ty in ["Instant", "SystemTime"] {
            if match_seq(toks, i, &[ty, ":", ":", "now"]) {
                push_diag(
                    out,
                    lexed,
                    path,
                    &toks[i],
                    "wall-clock",
                    format!(
                        "`{ty}::now()` outside cluster::stats/cluster::cost/bench; wall-clock \
                         must only feed modelled stats, never wire bytes or model output"
                    ),
                );
            }
        }
    }
}

fn check_ambient_env(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !ambient_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        for f in ["var", "var_os", "vars", "args"] {
            if match_seq(toks, i, &["env", ":", ":", f]) {
                push_diag(
                    out,
                    lexed,
                    path,
                    &toks[i],
                    "ambient-env",
                    format!("`env::{f}` in a trainer path: process environment is ambient \
                             nondeterministic input"),
                );
            }
        }
        if match_seq(toks, i, &["current", "(", ")", ".", "id"]) {
            push_diag(
                out,
                lexed,
                path,
                &toks[i],
                "ambient-env",
                "`thread::current().id()` in a trainer path: thread identity must never \
                 influence results"
                    .to_string(),
            );
        }
    }
}

fn check_panic_call(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !comm_layer_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if let Some(name) = toks[i].ident() {
            if matches!(name, "panic" | "unimplemented" | "todo")
                && match_seq(toks, i + 1, &["!"])
            {
                push_diag(
                    out,
                    lexed,
                    path,
                    &toks[i],
                    "panic-call",
                    format!("`{name}!` in the comm layer; return a typed CommError instead"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: slice-index
// ---------------------------------------------------------------------------

/// `expr[i]` indexing in the comm layer. Range subscripts (`buf[lo..hi]`)
/// are exempt — they are bulk views whose bounds the collectives compute
/// from world size, and slicing failure there would already be a protocol
/// bug caught by shape asserts.
fn check_slice_index(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !comm_layer_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        // Indexing looks like `<ident> [ ... ]`. A `[` after anything else is
        // a type (`: [u8; 4]`), an attribute (`#[...]`), a macro body
        // (`vec![...]` — the `!` sits between), or an array literal. A `[`
        // after a *keyword* is a slice type (`&mut [f64]`) or an array
        // literal in expression position (`for p in [a, b]`), never indexing.
        const KEYWORDS: &[&str] = &[
            "mut", "dyn", "impl", "in", "as", "return", "break", "else", "match", "const",
        ];
        let receiver = toks[i].ident().is_some_and(|id| !KEYWORDS.contains(&id))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && !(i > 0 && toks[i - 1].is_punct('!'));
        if receiver {
            // Find the matching `]` and look for a `..` range inside.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_range = false;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 && toks[j].is_punct('.') && match_seq(toks, j + 1, &["."]) {
                    has_range = true;
                }
                j += 1;
            }
            if !has_range && j > i + 2 {
                let name = toks[i].ident().unwrap_or("<expr>");
                push_diag(
                    out,
                    lexed,
                    path,
                    &toks[i + 1],
                    "slice-index",
                    format!(
                        "unchecked index `{name}[..]` in the comm layer can panic \
                         mid-collective; use .get() or justify the bound"
                    ),
                );
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule: fault-point
// ---------------------------------------------------------------------------

/// Every per-tree loop (`for t in start_tree..config.n_trees`) in a
/// distributed trainer must poll `fault_point` somewhere in its body, so
/// injected crashes land at checkpoint-recoverable boundaries.
fn check_fault_point(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !fault_point_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].ident() != Some("for") {
            continue;
        }
        // Header = tokens up to the body `{`.
        let mut open = i + 1;
        while open < toks.len() && !toks[open].is_punct('{') {
            open += 1;
        }
        let header = &toks[i..open.min(toks.len())];
        if !header.iter().any(|t| matches!(t.ident(), Some("n_trees") | Some("start_tree"))) {
            continue;
        }
        let close = matching_brace(toks, open);
        let body = &toks[open..close.min(toks.len())];
        if !body.iter().any(|t| t.ident() == Some("fault_point")) {
            push_diag(
                out,
                lexed,
                path,
                &toks[i],
                "fault-point",
                "per-tree trainer loop without a fault_point poll: injected crashes \
                 cannot land at a recoverable boundary"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: comm-unwrap
// ---------------------------------------------------------------------------

/// `.unwrap()` / `.expect(` on a statement that performs comm. The
/// statement is scanned backwards to the nearest `;`/`{`/`}`; if it
/// contains a comm token (a collective name, `send`, `recv`, `comm`, or
/// `fault_point`), the unwrap turns a typed CommError into a panic that
/// bypasses retry and supervision.
fn check_comm_unwrap(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !comm_unwrap_scope(path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let is_unwrap = match_seq(toks, i, &[".", "unwrap", "(", ")"])
            || match_seq(toks, i, &[".", "expect", "("]);
        if !is_unwrap {
            continue;
        }
        // Scan back to statement start.
        let mut j = i;
        while j > 0 {
            let t = &toks[j - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            j -= 1;
        }
        let comm_token = toks[j..i].iter().any(|t| {
            t.ident().is_some_and(|id| {
                is_collective_name(id)
                    || matches!(id, "send" | "recv" | "comm" | "fault_point")
            })
        });
        if comm_token {
            let method = toks[i + 1].ident().unwrap_or("unwrap");
            push_diag(
                out,
                lexed,
                path,
                &toks[i + 1],
                "comm-unwrap",
                format!(
                    "`.{method}()` on a comm result: CommError must propagate with `?` so \
                     retry/supervision can absorb the fault"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-outside-simd
// ---------------------------------------------------------------------------

/// The one module whose `unsafe` has been audited: the fixed-width lane
/// structs and accumulate helpers behind the SIMD histogram fills. Every
/// other file keeps the compiler's memory-safety checks.
fn unsafe_scope(path: &str) -> bool {
    path != "crates/core/src/kernels/simd.rs"
}

/// Any `unsafe` token (block, fn, impl, trait) outside the audited SIMD
/// module. The lexer treats keywords as identifiers, so a plain ident scan
/// covers every syntactic position; comments and strings are already
/// stripped.
fn check_unsafe_outside_simd(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if !unsafe_scope(path) {
        return;
    }
    for t in &lexed.tokens {
        if t.ident() == Some("unsafe") {
            push_diag(
                out,
                lexed,
                path,
                t,
                "unsafe-outside-simd",
                "`unsafe` outside gbdt-core::kernels::simd; move the code into the \
                 audited module or find a safe formulation"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: stale-pragma
// ---------------------------------------------------------------------------

/// Flags allow pragmas that suppressed nothing. Must run *after* every
/// other rule: [`Lexed::allowed`] records each suppression as it
/// happens, so by the end of a pass any `(pragma line, rule)` pair not
/// in the used set is dead weight. Model-check rules are exempt — their
/// pass runs separately over whole-workspace state — as is
/// `stale-pragma` itself.
fn check_stale_pragmas(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let used = lexed.used.borrow().clone();
    for (line, rules) in &lexed.pragmas {
        for rule in rules {
            if rule == "stale-pragma" {
                continue;
            }
            let known_lint = RULES.iter().any(|(n, _)| n == rule);
            let known_mc = crate::mc::MC_RULES.iter().any(|(n, _)| n == rule);
            if known_mc {
                continue;
            }
            let reason = if !known_lint {
                format!("pragma allows `{rule}`, which is not a known rule")
            } else if !used.contains(&(*line, rule.clone())) {
                format!(
                    "pragma allows `{rule}` but suppresses no `{rule}` finding \
                     here — remove it"
                )
            } else {
                continue;
            };
            if !lexed.allowed("stale-pragma", *line) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: *line,
                    col: 1,
                    rule: "stale-pragma",
                    message: reason,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs every rule against one lexed file. `path` is workspace-relative
/// with `/` separators — it selects which rules apply.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_map_iteration(path, lexed, &mut out);
    check_wall_clock(path, lexed, &mut out);
    check_ambient_env(path, lexed, &mut out);
    check_panic_call(path, lexed, &mut out);
    check_slice_index(path, lexed, &mut out);
    check_fault_point(path, lexed, &mut out);
    check_comm_unwrap(path, lexed, &mut out);
    check_unsafe_outside_simd(path, lexed, &mut out);
    protocol::check_rank_branches(path, lexed, &mut out);
    protocol::check_tag_registry(path, lexed, &mut out);
    check_stale_pragmas(path, lexed, &mut out);
    out.sort_by_key(|d| (d.line, d.col));
    out
}
