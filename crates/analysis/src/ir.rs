//! The protocol IR: a small typed language of communication operations
//! extracted from lexed source (DESIGN.md item 15).
//!
//! Extraction ([`crate::extract`]) lowers each function body to a tree of
//! [`Op`]s; the model checker ([`crate::mc`]) flattens that tree into one
//! linear trace per rank by evaluating [`Expr`]s in a per-rank
//! environment. The discipline throughout is *conservative
//! over-approximation*: anything the evaluator cannot resolve degrades to
//! a nondeterministic choice (branches, loop trip counts) or marks the
//! unit unresolvable (peer/tag positions) — it never silently guesses.

use std::collections::{BTreeMap, BTreeSet};

/// Integer expressions over rank, world size, literals, and let-bound
/// names — the arithmetic that peer and tag positions are written in
/// (`(r + 1) % w`, `tag + s as u64`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Num(u64),
    /// `self.rank()` / `ctx.rank()` — the one rank-divergent leaf.
    Rank,
    /// `self.world()` / `ctx.world()`.
    World,
    Var(String),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Mod(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates under `env` (which carries `rank`/`world` bindings for
    /// the simulated rank plus let-bound and registry names). Wrapping
    /// arithmetic mirrors release-mode Rust; division or modulo by zero
    /// is unevaluable rather than a panic.
    pub fn eval(&self, rank: u64, world: u64, env: &BTreeMap<String, u64>) -> Option<u64> {
        match self {
            Expr::Num(n) => Some(*n),
            Expr::Rank => Some(rank),
            Expr::World => Some(world),
            Expr::Var(name) => env.get(name).copied(),
            Expr::Add(a, b) => {
                Some(a.eval(rank, world, env)?.wrapping_add(b.eval(rank, world, env)?))
            }
            Expr::Sub(a, b) => {
                Some(a.eval(rank, world, env)?.wrapping_sub(b.eval(rank, world, env)?))
            }
            Expr::Mul(a, b) => {
                Some(a.eval(rank, world, env)?.wrapping_mul(b.eval(rank, world, env)?))
            }
            Expr::Div(a, b) => {
                let d = b.eval(rank, world, env)?;
                a.eval(rank, world, env)?.checked_div(d)
            }
            Expr::Mod(a, b) => {
                let d = b.eval(rank, world, env)?;
                a.eval(rank, world, env)?.checked_rem(d)
            }
        }
    }

    /// Whether this expression structurally depends on the rank, looking
    /// through let-bindings (`origins` maps a name to the expression it
    /// was bound to). Decides if an unevaluable comparison is a
    /// rank-divergent branch (free-variable candidate) or plain data
    /// nondeterminism.
    pub fn mentions_rank(&self, origins: &BTreeMap<String, Expr>) -> bool {
        self.mentions_rank_bounded(origins, 0)
    }

    fn mentions_rank_bounded(&self, origins: &BTreeMap<String, Expr>, depth: u32) -> bool {
        if depth > 16 {
            return false;
        }
        match self {
            Expr::Rank => true,
            Expr::Num(_) | Expr::World => false,
            Expr::Var(name) => origins
                .get(name)
                .is_some_and(|e| e.mentions_rank_bounded(origins, depth + 1)),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                a.mentions_rank_bounded(origins, depth + 1)
                    || b.mentions_rank_bounded(origins, depth + 1)
            }
        }
    }

    /// Collects every free `Var` name into `out`.
    pub fn vars_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Num(_) | Expr::Rank | Expr::World => {}
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                a.vars_into(out);
                b.vars_into(out);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn apply(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A branch condition: a single comparison we can try to evaluate, or an
/// opaque condition that becomes a synchronized nondeterministic choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    Cmp(CmpOp, Expr, Expr),
    Unknown,
}

/// The right-hand side of a `let` binding the extractor understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// An arithmetic expression — binds the evaluated value.
    Expr(Expr),
    /// `alloc_collective_tag()` / `alloc_collective_tags(n)` — binds the
    /// current per-rank collective-tag counter and advances it by `n`.
    AllocTags(Expr),
    /// `let tags = [A, B, C];` — a tag array later passed to `recv_any`.
    TagArray(Vec<Expr>),
    /// Anything else; the name is bound to no value.
    Opaque,
}

/// Where a `recv_any` call takes its tag set from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvAnySrc {
    /// Inline `&[A, B]`.
    List(Vec<Expr>),
    /// `&tags` naming a `TagArray` let in the same function.
    Ref(String),
}

/// One protocol operation. `site` fields number nondeterministic choice
/// points; the checker synchronizes the chosen alternative across ranks
/// (data-dependent control flow is rank-uniform in SPMD code — rank
/// divergence enters only through [`Expr::Rank`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    Let(String, Rhs),
    Send { to: Expr, tag: Expr, line: u32 },
    Recv { from: Expr, tag: Expr, line: u32 },
    RecvAny { tags: RecvAnySrc, line: u32 },
    /// A call to a collective (or to `fault_point`, modeled identically):
    /// every rank must reach it together, kinds matching.
    Rendezvous { kind: String, line: u32 },
    /// A call to a named local function; resolved by the checker to a
    /// `Rendezvous` when the callee is protocol-bearing, dropped
    /// otherwise.
    Call { name: String, line: u32 },
    /// `purge_pending()` — crash-recovery buffer drain (serve plane).
    Purge { line: u32 },
    If { cond: Cond, then: Vec<Op>, els: Vec<Op>, site: u32, line: u32 },
    ForRange { var: String, lo: Expr, hi: Expr, body: Vec<Op>, site: u32 },
    /// `while` / `loop` / any `for` whose bounds don't evaluate:
    /// explored at 0 and 2 trips.
    LoopNondet { body: Vec<Op>, site: u32 },
    /// `match`: one synchronized arm choice per exploration.
    Match { arms: Vec<Vec<Op>>, site: u32, line: u32 },
    Continue,
    Break,
    Return,
}

impl Op {
    /// Whether this op (or any nested op) is a *direct* protocol
    /// operation — the seed of the protocol-bearing fixpoint.
    pub fn is_direct_protocol(&self) -> bool {
        match self {
            Op::Send { .. }
            | Op::Recv { .. }
            | Op::RecvAny { .. }
            | Op::Rendezvous { .. } => true,
            Op::If { then, els, .. } => {
                then.iter().any(Op::is_direct_protocol) || els.iter().any(Op::is_direct_protocol)
            }
            Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => {
                body.iter().any(Op::is_direct_protocol)
            }
            Op::Match { arms, .. } => {
                arms.iter().any(|a| a.iter().any(Op::is_direct_protocol))
            }
            _ => false,
        }
    }

    /// Collects the names of functions this op calls.
    pub fn calls_into(&self, out: &mut BTreeSet<String>) {
        match self {
            Op::Call { name, .. } => {
                out.insert(name.clone());
            }
            Op::If { then, els, .. } => {
                for op in then.iter().chain(els) {
                    op.calls_into(out);
                }
            }
            Op::ForRange { body, .. } | Op::LoopNondet { body, .. } => {
                for op in body {
                    op.calls_into(out);
                }
            }
            Op::Match { arms, .. } => {
                for arm in arms {
                    for op in arm {
                        op.calls_into(out);
                    }
                }
            }
            _ => {}
        }
    }
}

/// One extracted function: its name, declaration line, body ops, any
/// `let tags = [...]` arrays (for `recv_any` resolution), and the number
/// of nondeterministic choice sites the body contains.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: u32,
    pub ops: Vec<Op>,
    pub tag_arrays: BTreeMap<String, Vec<Expr>>,
    pub n_sites: u32,
}

impl FnDef {
    /// Does the body contain a direct protocol op (before call
    /// resolution)?
    pub fn has_direct_protocol(&self) -> bool {
        self.ops.iter().any(Op::is_direct_protocol)
    }

    /// Every function name the body calls.
    pub fn calls(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for op in &self.ops {
            op.calls_into(&mut out);
        }
        out
    }
}
