//! Schedule extraction: lowering lexed function bodies to the protocol IR.
//!
//! A recursive-descent pass over the token stream recognizes the
//! communication idioms this workspace actually uses — `comm.send(to,
//! tag, ..)`, `recv(from, tag)`, `recv_any(&tags)`, collective calls,
//! `alloc_collective_tag(s)`, `fault_point`, `purge_pending` — and the
//! control flow around them (`if`/`else if`, `for` over literal ranges,
//! `while`/`loop`, `match`). Everything else degrades conservatively:
//! an unparseable loop bound becomes a nondeterministic loop, an opaque
//! condition a nondeterministic branch, and an `.enumerate()` loop is
//! only given world-sized bounds when the body's own
//! `assert_eq!(x.len(), ..world())` licenses it.

use crate::ir::{CmpOp, Cond, Expr, FnDef, Op, RecvAnySrc, Rhs};
use crate::lexer::{Lexed, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Extracts every function body in `lexed` (test items are already
/// stripped by the lexer). Nested functions inside impl blocks and
/// modules are all found; closures stay part of their enclosing
/// statement.
pub fn extract_fns(lexed: &Lexed) -> Vec<FnDef> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].ident() == Some("fn") {
            if let Some(name_tok) = t.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    // Body = first `{` past the signature, outside () and [].
                    let mut j = i + 2;
                    let (mut paren, mut brack) = (0i32, 0i32);
                    while j < t.len() {
                        match () {
                            _ if t[j].is_punct('(') => paren += 1,
                            _ if t[j].is_punct(')') => paren -= 1,
                            _ if t[j].is_punct('[') => brack += 1,
                            _ if t[j].is_punct(']') => brack -= 1,
                            _ if t[j].is_punct('{') && paren == 0 && brack == 0 => break,
                            // A braceless decl (`fn f();` in a trait) ends here.
                            _ if t[j].is_punct(';') && paren == 0 && brack == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if j < t.len() && t[j].is_punct('{') {
                        let close = matching_brace(t, j);
                        let body = &t[j + 1..close];
                        let mut px = Parser::new(body);
                        let ops = px.parse_block(body);
                        out.push(FnDef {
                            name: name.to_string(),
                            line: t[i].line,
                            ops,
                            tag_arrays: px.tag_arrays,
                            n_sites: px.next_site,
                        });
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Parses a `mod protocol { ... }` tag registry out of a lexed file:
/// `(name, value, line)` per `pub const NAME: u64 = <literal>;`.
pub fn parse_registry(lexed: &Lexed) -> Vec<(String, u64, u32)> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].ident() == Some("mod")
            && t.get(i + 1).and_then(Token::ident) == Some("protocol")
            && t.get(i + 2).is_some_and(|x| x.is_punct('{'))
        {
            let close = matching_brace(t, i + 2);
            let span = &t[i + 3..close];
            let mut j = 0;
            while j + 5 < span.len() {
                if span[j].ident() == Some("const") {
                    if let (Some(name), true) = (
                        span.get(j + 1).and_then(Token::ident),
                        span.get(j + 2).is_some_and(|x| x.is_punct(':')),
                    ) {
                        // const NAME : u64 = <num> ;
                        let mut k = j + 3;
                        while k < span.len() && !span[k].is_punct('=') {
                            k += 1;
                        }
                        if let Some(crate::lexer::Tok::Num(num)) =
                            span.get(k + 1).map(|x| x.tok.clone())
                        {
                            if let Some(v) = crate::protocol::parse_u64(&num) {
                                out.push((name.to_string(), v, span[j].line));
                            }
                        }
                    }
                }
                j += 1;
            }
        }
    }
    out
}

/// Collective-call names the model checker treats as rendezvous points.
/// Extends the lint rule's list with `barrier` (excluded there because a
/// barrier inside a rank branch is the *fix* for some patterns, but for
/// simulation a barrier is exactly a rendezvous).
fn is_rendezvous_name(name: &str) -> bool {
    crate::rules::is_collective_name(name) || name == "barrier"
}

struct Parser {
    next_site: u32,
    tag_arrays: BTreeMap<String, Vec<Expr>>,
    /// Idents licensed by `assert_eq!(x.len(), ..world())` to drive
    /// world-sized `.enumerate()` loops.
    world_sized: BTreeSet<String>,
}

impl Parser {
    fn new(body: &[Token]) -> Self {
        let mut world_sized = BTreeSet::new();
        // Pre-pass: assert_eq!(X.len(), <..>.world(), ...) licenses X.
        let mut i = 0;
        while i + 8 < body.len() {
            if body[i].ident() == Some("assert_eq")
                && body[i + 1].is_punct('!')
                && body[i + 2].is_punct('(')
            {
                let close = matching_paren(body, i + 2);
                let args = split_args(&body[i + 3..close]);
                if args.len() >= 2 {
                    let a0 = args[0];
                    let a1 = args[1];
                    let len_call = a0.len() >= 4
                        && a0[a0.len() - 3].ident() == Some("len")
                        && a0[a0.len() - 2].is_punct('(')
                        && a0[a0.len() - 1].is_punct(')');
                    let world_call = a1.len() >= 3
                        && a1[a1.len() - 3].ident() == Some("world")
                        && a1[a1.len() - 2].is_punct('(')
                        && a1[a1.len() - 1].is_punct(')');
                    if len_call && world_call {
                        if let Some(name) = a0[0].ident() {
                            world_sized.insert(name.to_string());
                        }
                    }
                }
                i = close;
                continue;
            }
            i += 1;
        }
        Parser { next_site: 0, tag_arrays: BTreeMap::new(), world_sized }
    }

    fn site(&mut self) -> u32 {
        let s = self.next_site;
        self.next_site += 1;
        s
    }

    /// Parses a brace-free statement sequence (a block body).
    fn parse_block(&mut self, t: &[Token]) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut i = 0;
        while i < t.len() {
            match t[i].ident() {
                Some("if") => i = self.parse_if(t, i, &mut ops),
                Some("for") => i = self.parse_for(t, i, &mut ops),
                Some("while") | Some("loop") => i = self.parse_loop(t, i, &mut ops),
                Some("match") => i = self.parse_match(t, i, &mut ops),
                Some("let") => i = self.parse_let(t, i, &mut ops),
                Some("continue") => {
                    ops.push(Op::Continue);
                    i = statement_end(t, i);
                }
                Some("break") => {
                    ops.push(Op::Break);
                    i = statement_end(t, i);
                }
                Some("return") => {
                    let end = statement_end(t, i);
                    self.scan_ops(&t[i..end], &mut ops);
                    ops.push(Op::Return);
                    i = end;
                }
                _ => {
                    let end = statement_end(t, i);
                    self.scan_ops(&t[i..end], &mut ops);
                    i = end;
                }
            }
        }
        ops
    }

    /// `if <cond> { .. } [else if .. | else { .. }]` — also `if let`,
    /// whose pattern becomes an opaque condition.
    fn parse_if(&mut self, t: &[Token], i: usize, ops: &mut Vec<Op>) -> usize {
        let line = t[i].line;
        let mut j = i + 1;
        let cond_start = j;
        let (mut paren, mut brack) = (0i32, 0i32);
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
            } else if t[j].is_punct('[') {
                brack += 1;
            } else if t[j].is_punct(']') {
                brack -= 1;
            } else if t[j].is_punct('{') && paren == 0 && brack == 0 {
                break;
            }
            j += 1;
        }
        if j >= t.len() {
            return t.len();
        }
        let cond_tokens = &t[cond_start..j];
        // Condition expressions may themselves perform protocol ops
        // (`if comm.recv(..)` — none in this workspace, but stay sound).
        self.scan_ops(cond_tokens, ops);
        let cond = parse_cond(cond_tokens);
        let close = matching_brace(t, j);
        let then = self.parse_block(&t[j + 1..close]);
        let mut els = Vec::new();
        let mut end = close + 1;
        if t.get(end).and_then(Token::ident) == Some("else") {
            if t.get(end + 1).and_then(Token::ident) == Some("if") {
                end = self.parse_if(t, end + 1, &mut els);
            } else if t.get(end + 1).is_some_and(|x| x.is_punct('{')) {
                let eclose = matching_brace(t, end + 1);
                els = self.parse_block(&t[end + 2..eclose]);
                end = eclose + 1;
            }
        }
        let site = self.site();
        ops.push(Op::If { cond, then, els, site, line });
        end
    }

    /// `for <pat> in <iterable> { .. }`. Literal `lo..hi` ranges become
    /// [`Op::ForRange`]; `x.iter().enumerate()` does too when the body's
    /// asserts prove `x.len() == world()`; everything else degrades to a
    /// nondeterministic loop.
    fn parse_for(&mut self, t: &[Token], i: usize, ops: &mut Vec<Op>) -> usize {
        // Pattern: up to `in` at depth 0.
        let mut j = i + 1;
        let (mut paren, mut brack) = (0i32, 0i32);
        let pat_start = j;
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
            } else if t[j].is_punct('[') {
                brack += 1;
            } else if t[j].is_punct(']') {
                brack -= 1;
            } else if t[j].ident() == Some("in") && paren == 0 && brack == 0 {
                break;
            }
            j += 1;
        }
        if j >= t.len() {
            return t.len();
        }
        // Loop variable: first non-`mut`, non-`_` ident in the pattern
        // (for tuples the first element is the index this code puts there).
        let var = t[pat_start..j]
            .iter()
            .filter_map(Token::ident)
            .find(|s| *s != "mut" && *s != "_" && *s != "ref")
            .unwrap_or("_")
            .to_string();
        // Iterable: up to body `{` at depth 0.
        let it_start = j + 1;
        let (mut paren, mut brack) = (0i32, 0i32);
        j = it_start;
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
            } else if t[j].is_punct('[') {
                brack += 1;
            } else if t[j].is_punct(']') {
                brack -= 1;
            } else if t[j].is_punct('{') && paren == 0 && brack == 0 {
                break;
            }
            j += 1;
        }
        if j >= t.len() {
            return t.len();
        }
        let iterable = &t[it_start..j];
        self.scan_ops(iterable, ops);
        let close = matching_brace(t, j);
        let body = self.parse_block(&t[j + 1..close]);
        let site = self.site();
        let range = parse_range(iterable).or_else(|| {
            // x.iter().enumerate() / x.into_iter().enumerate() with an
            // assert-proven world-sized x → 0..world.
            let enumerated = iterable.len() >= 3
                && iterable[iterable.len() - 3].ident() == Some("enumerate");
            if enumerated {
                iterable
                    .first()
                    .and_then(Token::ident)
                    .filter(|n| self.world_sized.contains(*n))
                    .map(|_| (Expr::Num(0), Expr::World))
            } else {
                None
            }
        });
        match range {
            Some((lo, hi)) => ops.push(Op::ForRange { var, lo, hi, body, site }),
            None => ops.push(Op::LoopNondet { body, site }),
        }
        close + 1
    }

    /// `while <cond> { .. }` / `loop { .. }` → nondeterministic loop.
    fn parse_loop(&mut self, t: &[Token], i: usize, ops: &mut Vec<Op>) -> usize {
        let mut j = i + 1;
        let (mut paren, mut brack) = (0i32, 0i32);
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
            } else if t[j].is_punct('[') {
                brack += 1;
            } else if t[j].is_punct(']') {
                brack -= 1;
            } else if t[j].is_punct('{') && paren == 0 && brack == 0 {
                break;
            }
            j += 1;
        }
        if j >= t.len() {
            return t.len();
        }
        self.scan_ops(&t[i + 1..j], ops);
        let close = matching_brace(t, j);
        let body = self.parse_block(&t[j + 1..close]);
        let site = self.site();
        ops.push(Op::LoopNondet { body, site });
        close + 1
    }

    /// `match <scrutinee> { pat => arm, .. }`. Scrutinee ops are emitted
    /// first (e.g. `match comm.recv_any(&tags)`), then one synchronized
    /// arm choice.
    fn parse_match(&mut self, t: &[Token], i: usize, ops: &mut Vec<Op>) -> usize {
        let line = t[i].line;
        let mut j = i + 1;
        let (mut paren, mut brack) = (0i32, 0i32);
        while j < t.len() {
            if t[j].is_punct('(') {
                paren += 1;
            } else if t[j].is_punct(')') {
                paren -= 1;
            } else if t[j].is_punct('[') {
                brack += 1;
            } else if t[j].is_punct(']') {
                brack -= 1;
            } else if t[j].is_punct('{') && paren == 0 && brack == 0 {
                break;
            }
            j += 1;
        }
        if j >= t.len() {
            return t.len();
        }
        self.scan_ops(&t[i + 1..j], ops);
        let close = matching_brace(t, j);
        let span = &t[j + 1..close];
        let mut arms = Vec::new();
        let mut k = 0;
        while k < span.len() {
            // Pattern (with optional guard): up to `=>` at depth 0.
            let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
            let mut m = k;
            let mut found = false;
            while m + 1 < span.len() {
                if span[m].is_punct('(') {
                    p += 1;
                } else if span[m].is_punct(')') {
                    p -= 1;
                } else if span[m].is_punct('[') {
                    b += 1;
                } else if span[m].is_punct(']') {
                    b -= 1;
                } else if span[m].is_punct('{') {
                    br += 1;
                } else if span[m].is_punct('}') {
                    br -= 1;
                } else if span[m].is_punct('=')
                    && span[m + 1].is_punct('>')
                    && p == 0
                    && b == 0
                    && br == 0
                {
                    found = true;
                    break;
                }
                m += 1;
            }
            if !found {
                break;
            }
            let arm_start = m + 2;
            if span.get(arm_start).is_some_and(|x| x.is_punct('{')) {
                let aclose = matching_brace(span, arm_start);
                arms.push(self.parse_block(&span[arm_start + 1..aclose]));
                k = aclose + 1;
                if span.get(k).is_some_and(|x| x.is_punct(',')) {
                    k += 1;
                }
            } else {
                // Expression arm: to `,` at depth 0 (or end of match body).
                let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
                let mut e = arm_start;
                while e < span.len() {
                    if span[e].is_punct('(') {
                        p += 1;
                    } else if span[e].is_punct(')') {
                        p -= 1;
                    } else if span[e].is_punct('[') {
                        b += 1;
                    } else if span[e].is_punct(']') {
                        b -= 1;
                    } else if span[e].is_punct('{') {
                        br += 1;
                    } else if span[e].is_punct('}') {
                        br -= 1;
                    } else if span[e].is_punct(',') && p == 0 && b == 0 && br == 0 {
                        break;
                    }
                    e += 1;
                }
                // Flow keywords make the whole arm that flow op; plain
                // expression arms are linearly scanned for protocol ops.
                let mut arm = Vec::new();
                self.scan_ops(&span[arm_start..e], &mut arm);
                match span.get(arm_start).and_then(Token::ident) {
                    Some("return") => arm.push(Op::Return),
                    Some("continue") => arm.push(Op::Continue),
                    Some("break") => arm.push(Op::Break),
                    _ => {}
                }
                arms.push(arm);
                k = e + 1;
            }
        }
        let site = self.site();
        ops.push(Op::Match { arms, site, line });
        close + 1
    }

    /// `let <pat> = <rhs>;` — binds what it can (arithmetic, collective
    /// tag allocations, tag arrays) and degrades the rest to an opaque
    /// binding whose RHS is still scanned for protocol ops.
    fn parse_let(&mut self, t: &[Token], i: usize, ops: &mut Vec<Op>) -> usize {
        let end = statement_end(t, i);
        let stmt = &t[i..end];
        // Binding name: single plain ident (skipping `mut`) directly
        // before `:` or `=`; tuple/struct patterns bind nothing.
        let mut j = 1;
        if stmt.get(j).and_then(Token::ident) == Some("mut") {
            j += 1;
        }
        let name = match (stmt.get(j).and_then(Token::ident), stmt.get(j + 1)) {
            (Some(n), Some(next)) if next.is_punct('=') || next.is_punct(':') => {
                Some(n.to_string())
            }
            _ => None,
        };
        // RHS: past the first top-level `=`.
        let mut eq = j;
        let (mut paren, mut brack, mut angle) = (0i32, 0i32, 0i32);
        while eq < stmt.len() {
            if stmt[eq].is_punct('(') {
                paren += 1;
            } else if stmt[eq].is_punct(')') {
                paren -= 1;
            } else if stmt[eq].is_punct('[') {
                brack += 1;
            } else if stmt[eq].is_punct('<') {
                angle += 1;
            } else if stmt[eq].is_punct('>') {
                angle -= 1;
            } else if stmt[eq].is_punct(']') {
                brack -= 1;
            } else if stmt[eq].is_punct('=')
                && paren == 0
                && brack == 0
                && angle <= 0
                && !stmt.get(eq + 1).is_some_and(|x| x.is_punct('='))
                && !stmt.get(eq.wrapping_sub(1)).is_some_and(|x| {
                    x.is_punct('=') || x.is_punct('!') || x.is_punct('<') || x.is_punct('>')
                })
            {
                break;
            }
            eq += 1;
        }
        if eq >= stmt.len() {
            self.scan_ops(stmt, ops);
            return end;
        }
        let rhs = &stmt[eq + 1..];
        let rhs = if rhs.last().is_some_and(|x| x.is_punct(';')) {
            &rhs[..rhs.len() - 1]
        } else {
            rhs
        };
        if let Some(name) = name {
            // alloc_collective_tag() / alloc_collective_tags(n)
            if let Some(pos) = rhs.iter().position(|x| {
                x.ident() == Some("alloc_collective_tag")
                    || x.ident() == Some("alloc_collective_tags")
            }) {
                let n = if rhs[pos].ident() == Some("alloc_collective_tags") {
                    let args_open = pos + 1;
                    if rhs.get(args_open).is_some_and(|x| x.is_punct('(')) {
                        let close = matching_paren(rhs, args_open);
                        parse_expr(&rhs[args_open + 1..close]).unwrap_or(Expr::Num(1))
                    } else {
                        Expr::Num(1)
                    }
                } else {
                    Expr::Num(1)
                };
                ops.push(Op::Let(name, Rhs::AllocTags(n)));
                return end;
            }
            // let tags = [A, B, C];
            if rhs.first().is_some_and(|x| x.is_punct('['))
                && rhs.last().is_some_and(|x| x.is_punct(']'))
            {
                let elems = split_args(&rhs[1..rhs.len() - 1]);
                let parsed: Vec<Option<Expr>> =
                    elems.iter().map(|e| parse_expr(e)).collect();
                if parsed.iter().all(Option::is_some) && !parsed.is_empty() {
                    let exprs: Vec<Expr> = parsed.into_iter().flatten().collect();
                    self.tag_arrays.insert(name.clone(), exprs.clone());
                    ops.push(Op::Let(name, Rhs::TagArray(exprs)));
                    return end;
                }
            }
            if let Some(expr) = parse_expr(rhs) {
                ops.push(Op::Let(name, Rhs::Expr(expr)));
                return end;
            }
            self.scan_ops(rhs, ops);
            ops.push(Op::Let(name, Rhs::Opaque));
            return end;
        }
        self.scan_ops(rhs, ops);
        end
    }

    /// Linear scan of a statement span for protocol operations. Control
    /// flow inside (closures, `?`-chains, if-expressions in let position)
    /// is deliberately flattened: an op found here executes
    /// unconditionally in the trace, which over-approximates uniformly
    /// across ranks and therefore never invents divergence.
    fn scan_ops(&mut self, t: &[Token], ops: &mut Vec<Op>) {
        let mut i = 0;
        while i < t.len() {
            let line = t[i].line;
            // Method calls: .send( / .send_f64s( / .recv( / .recv_any( /
            // .<collective>( / .fault_point( / .purge_pending(
            if t[i].is_punct('.') {
                if let (Some(name), Some(open)) = (
                    t.get(i + 1).and_then(Token::ident),
                    t.get(i + 2).filter(|x| x.is_punct('(')),
                ) {
                    let _ = open;
                    let close = matching_paren(t, i + 2);
                    let args = split_args(&t[i + 3..close]);
                    match name {
                        "send" | "send_f64s" if args.len() >= 2 => {
                            let to = parse_expr(args[0]);
                            let tag = parse_expr(args[1]);
                            ops.push(Op::Send {
                                to: to.unwrap_or(Expr::Var("?peer".into())),
                                tag: tag.unwrap_or(Expr::Var("?tag".into())),
                                line,
                            });
                            // Arguments may nest further calls; continue
                            // scanning inside the arg list.
                            i += 3;
                            continue;
                        }
                        "recv" if args.len() >= 2 => {
                            let from = parse_expr(args[0]);
                            let tag = parse_expr(args[1]);
                            ops.push(Op::Recv {
                                from: from.unwrap_or(Expr::Var("?peer".into())),
                                tag: tag.unwrap_or(Expr::Var("?tag".into())),
                                line,
                            });
                            i += 3;
                            continue;
                        }
                        "recv_any" if !args.is_empty() => {
                            let src = parse_recv_any_arg(args[0]);
                            ops.push(Op::RecvAny { tags: src, line });
                            i += 3;
                            continue;
                        }
                        "fault_point" => {
                            ops.push(Op::Rendezvous { kind: "fault_point".into(), line });
                            i = close + 1;
                            continue;
                        }
                        "purge_pending" => {
                            ops.push(Op::Purge { line });
                            i = close + 1;
                            continue;
                        }
                        n if is_rendezvous_name(n) => {
                            ops.push(Op::Rendezvous { kind: n.to_string(), line });
                            i += 3;
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            // Free function calls (`all_to_all(ctx, ..)`,
            // `common::sync(..)`): candidate protocol-bearing callees,
            // resolved against the call graph later. Macros (`name!`)
            // and capitalized constructors are skipped.
            if let Some(name) = t[i].ident() {
                let starts_lower = name.starts_with(|c: char| c.is_ascii_lowercase());
                let is_kw = matches!(
                    name,
                    "if" | "else" | "for" | "while" | "loop" | "match" | "let" | "return"
                        | "continue" | "break" | "in" | "as" | "move" | "mut" | "ref" | "fn"
                );
                let called = t.get(i + 1).is_some_and(|x| x.is_punct('('));
                let is_macro = t.get(i + 1).is_some_and(|x| x.is_punct('!'));
                let is_method = i > 0 && t[i - 1].is_punct('.');
                if starts_lower && !is_kw && called && !is_macro && !is_method {
                    ops.push(Op::Call { name: name.to_string(), line });
                }
                let _ = is_macro;
            }
            i += 1;
        }
    }
}

/// Splits an argument token span on top-level commas.
fn split_args(t: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
    let mut start = 0;
    for i in 0..t.len() {
        if t[i].is_punct('(') {
            p += 1;
        } else if t[i].is_punct(')') {
            p -= 1;
        } else if t[i].is_punct('[') {
            b += 1;
        } else if t[i].is_punct(']') {
            b -= 1;
        } else if t[i].is_punct('{') {
            br += 1;
        } else if t[i].is_punct('}') {
            br -= 1;
        } else if t[i].is_punct(',') && p == 0 && b == 0 && br == 0 {
            out.push(&t[start..i]);
            start = i + 1;
        }
    }
    if start < t.len() {
        out.push(&t[start..]);
    }
    out
}

/// The `recv_any` tag-set argument: `&tags` (a named array) or `&[A, B]`.
fn parse_recv_any_arg(t: &[Token]) -> RecvAnySrc {
    let t = if t.first().is_some_and(|x| x.is_punct('&')) { &t[1..] } else { t };
    if t.first().is_some_and(|x| x.is_punct('[')) && t.last().is_some_and(|x| x.is_punct(']')) {
        let elems = split_args(&t[1..t.len() - 1]);
        let parsed: Vec<Expr> = elems
            .iter()
            .filter_map(|e| parse_expr(e))
            .collect();
        return RecvAnySrc::List(parsed);
    }
    match t.first().and_then(Token::ident) {
        Some(name) => RecvAnySrc::Ref(name.to_string()),
        None => RecvAnySrc::Ref("?tags".into()),
    }
}

/// Parses `lo .. hi` out of a for-loop iterable.
fn parse_range(t: &[Token]) -> Option<(Expr, Expr)> {
    let (mut p, mut b) = (0i32, 0i32);
    for i in 0..t.len().saturating_sub(1) {
        if t[i].is_punct('(') {
            p += 1;
        } else if t[i].is_punct(')') {
            p -= 1;
        } else if t[i].is_punct('[') {
            b += 1;
        } else if t[i].is_punct(']') {
            b -= 1;
        } else if t[i].is_punct('.') && t[i + 1].is_punct('.') && p == 0 && b == 0 {
            // `..=` inclusive ranges: hi becomes hi+1.
            let inclusive = t.get(i + 2).is_some_and(|x| x.is_punct('='));
            let hi_start = if inclusive { i + 3 } else { i + 2 };
            let lo = parse_expr(&t[..i])?;
            let hi = parse_expr(&t[hi_start..])?;
            let hi = if inclusive {
                Expr::Add(Box::new(hi), Box::new(Expr::Num(1)))
            } else {
                hi
            };
            return Some((lo, hi));
        }
    }
    None
}

/// Parses a condition span into a single comparison where possible.
/// `&&`/`||` chains, `if let`, and anything unparsable are `Unknown`.
fn parse_cond(t: &[Token]) -> Cond {
    if t.first().and_then(Token::ident) == Some("let") {
        return Cond::Unknown;
    }
    // Reject boolean connectives outright.
    for i in 0..t.len().saturating_sub(1) {
        if (t[i].is_punct('&') && t[i + 1].is_punct('&'))
            || (t[i].is_punct('|') && t[i + 1].is_punct('|'))
        {
            return Cond::Unknown;
        }
    }
    // Find exactly one top-level comparator.
    let (mut p, mut b) = (0i32, 0i32);
    let mut found: Option<(usize, usize, CmpOp)> = None;
    let mut i = 0;
    while i < t.len() {
        if t[i].is_punct('(') {
            p += 1;
        } else if t[i].is_punct(')') {
            p -= 1;
        } else if t[i].is_punct('[') {
            b += 1;
        } else if t[i].is_punct(']') {
            b -= 1;
        } else if p == 0 && b == 0 {
            let two = |c1: char, c2: char| {
                t[i].is_punct(c1) && t.get(i + 1).is_some_and(|x| x.is_punct(c2))
            };
            let op = if two('=', '=') {
                Some((2, CmpOp::Eq))
            } else if two('!', '=') {
                Some((2, CmpOp::Ne))
            } else if two('<', '=') {
                Some((2, CmpOp::Le))
            } else if two('>', '=') {
                Some((2, CmpOp::Ge))
            } else if t[i].is_punct('<') {
                Some((1, CmpOp::Lt))
            } else if t[i].is_punct('>') {
                Some((1, CmpOp::Gt))
            } else {
                None
            };
            if let Some((w, op)) = op {
                if found.is_some() {
                    return Cond::Unknown;
                }
                found = Some((i, w, op));
                i += w;
                continue;
            }
        }
        i += 1;
    }
    match found {
        Some((at, w, op)) => {
            match (parse_expr(&t[..at]), parse_expr(&t[at + w..])) {
                (Some(a), Some(bx)) => Cond::Cmp(op, a, bx),
                _ => Cond::Unknown,
            }
        }
        None => Cond::Unknown,
    }
}

/// Arithmetic expression parser (`+ - * / %`, parens, `as` casts,
/// `.rank()`/`.world()` chains, bare idents, numeric literals). Returns
/// `None` unless the whole span parses — partial parses would misread
/// peer/tag positions.
pub(crate) fn parse_expr(t: &[Token]) -> Option<Expr> {
    let mut pos = 0;
    let e = parse_add(t, &mut pos)?;
    if pos == t.len() {
        Some(e)
    } else {
        None
    }
}

fn parse_add(t: &[Token], pos: &mut usize) -> Option<Expr> {
    let mut lhs = parse_mul(t, pos)?;
    loop {
        let op = match t.get(*pos) {
            Some(x) if x.is_punct('+') => '+',
            Some(x) if x.is_punct('-') => '-',
            _ => return Some(lhs),
        };
        *pos += 1;
        let rhs = parse_mul(t, pos)?;
        lhs = if op == '+' {
            Expr::Add(Box::new(lhs), Box::new(rhs))
        } else {
            Expr::Sub(Box::new(lhs), Box::new(rhs))
        };
    }
}

fn parse_mul(t: &[Token], pos: &mut usize) -> Option<Expr> {
    let mut lhs = parse_factor(t, pos)?;
    loop {
        let op = match t.get(*pos) {
            Some(x) if x.is_punct('*') => '*',
            Some(x) if x.is_punct('/') => '/',
            Some(x) if x.is_punct('%') => '%',
            _ => return Some(lhs),
        };
        *pos += 1;
        let rhs = parse_factor(t, pos)?;
        lhs = match op {
            '*' => Expr::Mul(Box::new(lhs), Box::new(rhs)),
            '/' => Expr::Div(Box::new(lhs), Box::new(rhs)),
            _ => Expr::Mod(Box::new(lhs), Box::new(rhs)),
        };
    }
}

fn parse_factor(t: &[Token], pos: &mut usize) -> Option<Expr> {
    let e = parse_primary(t, pos)?;
    // `as usize` / `as u64` casts are value-preserving here; skip them.
    while t.get(*pos).and_then(Token::ident) == Some("as") {
        t.get(*pos + 1).and_then(Token::ident)?;
        *pos += 2;
    }
    Some(e)
}

fn parse_primary(t: &[Token], pos: &mut usize) -> Option<Expr> {
    match t.get(*pos) {
        Some(tok) if tok.is_punct('(') => {
            let close = matching_paren(t, *pos);
            let inner = parse_expr(&t[*pos + 1..close])?;
            *pos = close + 1;
            Some(inner)
        }
        Some(Token { tok: crate::lexer::Tok::Num(n), .. }) => {
            let v = crate::protocol::parse_u64(n)?;
            *pos += 1;
            Some(Expr::Num(v))
        }
        Some(tok) => {
            let first = tok.ident()?;
            // A dotted chain: idents joined by `.`, possibly ending in a
            // nullary call. `self.rank()` / `ctx.comm.rank()` → Rank;
            // `.world()` → World; a bare single ident → Var; anything
            // else fails.
            let mut names = vec![first.to_string()];
            let mut j = *pos + 1;
            let mut trailing_call = false;
            while t.get(j).is_some_and(|x| x.is_punct('.')) {
                let name = t.get(j + 1).and_then(Token::ident)?;
                names.push(name.to_string());
                j += 2;
                if t.get(j).is_some_and(|x| x.is_punct('(')) {
                    // Only nullary terminal calls are recognized.
                    if !t.get(j + 1).is_some_and(|x| x.is_punct(')')) {
                        return None;
                    }
                    j += 2;
                    trailing_call = true;
                    if t.get(j).is_some_and(|x| x.is_punct('.')) {
                        // Longer chains after a call (`.rank().foo()`): bail.
                        return None;
                    }
                    break;
                }
            }
            let expr = match (names.last().map(String::as_str), trailing_call, names.len()) {
                (Some("rank"), true, _) => Expr::Rank,
                (Some("world"), true, _) => Expr::World,
                (_, false, 1) => Expr::Var(names[0].clone()),
                _ => return None,
            };
            *pos = j;
            Some(expr)
        }
        None => None,
    }
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(t: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < t.len() {
        if t[i].is_punct('{') {
            depth += 1;
        } else if t[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    t.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(t: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < t.len() {
        if t[i].is_punct('(') {
            depth += 1;
        } else if t[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    t.len().saturating_sub(1)
}

/// End of the statement starting at `i`: past the `;` at nesting depth 0,
/// or at the span end for a tail expression. Braces inside (closures,
/// if/match expressions in value position) nest rather than terminate.
fn statement_end(t: &[Token], i: usize) -> usize {
    let (mut p, mut b, mut br) = (0i32, 0i32, 0i32);
    let mut j = i;
    while j < t.len() {
        if t[j].is_punct('(') {
            p += 1;
        } else if t[j].is_punct(')') {
            p -= 1;
        } else if t[j].is_punct('[') {
            b += 1;
        } else if t[j].is_punct(']') {
            b -= 1;
        } else if t[j].is_punct('{') {
            br += 1;
        } else if t[j].is_punct('}') {
            br -= 1;
            if br < 0 {
                return j;
            }
        } else if t[j].is_punct(';') && p == 0 && b == 0 && br == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> Vec<FnDef> {
        extract_fns(&lex(src))
    }

    #[test]
    fn ring_exchange_extracts_send_recv_with_arithmetic() {
        let src = r#"
            impl Comm {
                pub fn ring(&self, payload: Bytes) -> Result<Bytes, CommError> {
                    let tag = self.alloc_collective_tag();
                    let next = (self.rank() + 1) % self.world();
                    let prev = (self.rank() + self.world() - 1) % self.world();
                    self.send(next, tag, payload)?;
                    self.recv(prev, tag)
                }
            }
        "#;
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        let ops = &fns[0].ops;
        assert!(matches!(ops[0], Op::Let(ref n, Rhs::AllocTags(_)) if n == "tag"));
        assert!(matches!(ops[1], Op::Let(ref n, Rhs::Expr(_)) if n == "next"));
        assert!(ops.iter().any(|o| matches!(o, Op::Send { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Recv { .. })));
    }

    #[test]
    fn rank_branch_and_world_loop_extract_structurally() {
        let src = r#"
            fn broadcastish(&self, root: usize, payload: Bytes) -> Result<Bytes, CommError> {
                let tag = self.alloc_collective_tag();
                if self.rank() == root {
                    for to in 0..self.world() {
                        if to != root {
                            self.send(to, tag, payload.clone())?;
                        }
                    }
                    Ok(payload)
                } else {
                    self.recv(root, tag)
                }
            }
        "#;
        let fns = fns_of(src);
        let Op::If { cond, then, els, .. } = &fns[0].ops[1] else {
            panic!("expected If, got {:?}", fns[0].ops)
        };
        assert_eq!(*cond, Cond::Cmp(CmpOp::Eq, Expr::Rank, Expr::Var("root".into())));
        assert!(matches!(then[0], Op::ForRange { .. }));
        assert!(els.iter().any(|o| matches!(o, Op::Recv { .. })));
    }

    #[test]
    fn enumerate_needs_world_assert() {
        let licensed = r#"
            fn f(&self, ranges: &[(usize, usize)]) {
                assert_eq!(ranges.len(), self.world(), "one per server");
                for (server, &(lo, hi)) in ranges.iter().enumerate() {
                    self.send(server, 7, x)?;
                }
            }
        "#;
        let fns = fns_of(licensed);
        assert!(
            matches!(&fns[0].ops[0], Op::ForRange { var, hi: Expr::World, .. } if var == "server"),
            "{:?}",
            fns[0].ops
        );

        let unlicensed = r#"
            fn f(&self, ranges: &[(usize, usize)]) {
                for (server, &(lo, hi)) in ranges.iter().enumerate() {
                    self.send(server, 7, x)?;
                }
            }
        "#;
        let fns = fns_of(unlicensed);
        assert!(matches!(&fns[0].ops[0], Op::LoopNondet { .. }));
    }

    #[test]
    fn collective_calls_become_rendezvous_and_free_calls_are_candidates() {
        let src = r#"
            fn train(ctx: &mut WorkerCtx) -> Result<(), CommError> {
                helperfn(ctx)?;
                ctx.comm.all_reduce_f64(&mut buf)?;
                ctx.fault_point(t, layer);
                Ok(())
            }
        "#;
        let fns = fns_of(src);
        let ops = &fns[0].ops;
        assert!(ops.iter().any(|o| matches!(o, Op::Call { name, .. } if name == "helperfn")));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Rendezvous { kind, .. } if kind == "all_reduce_f64")));
        assert!(ops
            .iter()
            .any(|o| matches!(o, Op::Rendezvous { kind, .. } if kind == "fault_point")));
    }

    #[test]
    fn recv_any_resolves_named_tag_arrays() {
        let src = r#"
            fn serve_loop(comm: &Comm) -> Result<(), CommError> {
                let tags = [A_TAG, B_TAG];
                loop {
                    let (from, tag, payload) = comm.recv_any(&tags)?;
                }
            }
        "#;
        let fns = fns_of(src);
        assert_eq!(
            fns[0].tag_arrays.get("tags"),
            Some(&vec![Expr::Var("A_TAG".into()), Expr::Var("B_TAG".into())])
        );
        fn find_recv_any(ops: &[Op]) -> bool {
            ops.iter().any(|o| match o {
                Op::RecvAny { tags: RecvAnySrc::Ref(n), .. } => n == "tags",
                Op::LoopNondet { body, .. } => find_recv_any(body),
                _ => false,
            })
        }
        assert!(find_recv_any(&fns[0].ops), "{:?}", fns[0].ops);
    }

    #[test]
    fn registry_parses_names_values_lines() {
        let src = r#"
            pub mod protocol {
                pub const A_TAG: u64 = 0x10;
                pub const B_TAG: u64 = 17;
                pub fn by_name(n: &str) -> Option<u64> { None }
            }
        "#;
        let reg = parse_registry(&lex(src));
        let names: Vec<&str> = reg.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["A_TAG", "B_TAG"]);
        assert_eq!(reg[0].1, 0x10);
        assert_eq!(reg[1].1, 17);
    }

    #[test]
    fn alloc_tags_count_expression_is_kept() {
        let src = r#"
            fn f(&self) {
                let w = self.world();
                let tag = self.alloc_collective_tags(w as u64 - 1);
            }
        "#;
        let fns = fns_of(src);
        let Op::Let(_, Rhs::AllocTags(n)) = &fns[0].ops[1] else {
            panic!("{:?}", fns[0].ops)
        };
        assert_eq!(
            *n,
            Expr::Sub(Box::new(Expr::Var("w".into())), Box::new(Expr::Num(1)))
        );
    }
}
