//! `gbdt-lint` — the workspace determinism / deadlock-freedom gate.
//!
//! ```text
//! gbdt-lint [--root PATH] [--json] [--protocol] [--model-check] [FILE...]
//! ```
//!
//! With no `FILE` arguments, lints every product source in the workspace
//! (`crates/*/src/**`, `examples/`). Explicit files are linted under their
//! workspace-relative paths, so rule scoping behaves identically. Exits 1
//! if any diagnostic fires; `--json` emits a machine-readable array for
//! CI; `--protocol` prints the per-function collective schedule of every
//! trainer instead of linting; `--model-check` runs the bounded protocol
//! model checker (worlds 1–4 simulation, serve frame coverage, wire
//! parity, lock order) instead of the lint rules and prints the
//! per-unit schedule report.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut protocol = false;
    let mut model_check = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--json" => json = true,
            "--protocol" => protocol = true,
            "--model-check" => model_check = true,
            "--help" | "-h" => {
                println!(
                    "usage: gbdt-lint [--root PATH] [--json] [--protocol] [--model-check] [FILE...]"
                );
                println!("\nlint rules:");
                for (id, summary) in gbdt_analysis::rules::RULES {
                    println!("  {id:<24} {summary}");
                }
                println!("\nmodel-check rules (--model-check):");
                for (id, summary) in gbdt_analysis::mc::MC_RULES {
                    println!("  {id:<24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| gbdt_analysis::find_workspace_root(&cwd)) else {
        return usage("could not find a workspace root (no Cargo.toml with [workspace] above cwd)");
    };

    if protocol {
        return match gbdt_analysis::workspace_protocol_report(&root) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => usage(&format!("failed to read workspace: {e}")),
        };
    }

    // Explicit FILE arguments, read and normalized to workspace-relative
    // paths (with `//@ path:` / `//@ file:` fixture directives honoured).
    let mut virtual_set: Vec<(String, String)> = Vec::new();
    for f in &files {
        let abs = if PathBuf::from(f).is_absolute() { PathBuf::from(f) } else { cwd.join(f) };
        let rel = abs
            .strip_prefix(&root)
            .map(|p| p.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/"))
            .unwrap_or_else(|_| f.clone());
        match std::fs::read_to_string(&abs) {
            Ok(src) => virtual_set.extend(gbdt_analysis::virtual_files(&rel, &src)),
            Err(e) => return usage(&format!("cannot read {f}: {e}")),
        }
    }

    if model_check {
        let outcome = if files.is_empty() {
            match gbdt_analysis::model_check_workspace(&root) {
                Ok(o) => o,
                Err(e) => return usage(&format!("failed to read workspace: {e}")),
            }
        } else {
            gbdt_analysis::model_check_files(&virtual_set)
        };
        if json {
            println!("{}", gbdt_analysis::diagnostics_to_json(&outcome.diags));
        } else {
            print!("{}", gbdt_analysis::mc::render_report(&outcome));
            for d in &outcome.diags {
                println!("{d}\n");
            }
        }
        return if outcome.diags.is_empty() {
            if !json {
                eprintln!("gbdt-lint: model check clean");
            }
            ExitCode::SUCCESS
        } else {
            if !json {
                eprintln!("gbdt-lint: {} model-check error(s)", outcome.diags.len());
            }
            ExitCode::FAILURE
        };
    }

    let diags = if files.is_empty() {
        match gbdt_analysis::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => return usage(&format!("failed to read workspace: {e}")),
        }
    } else {
        let mut d = Vec::new();
        for (rel, src) in &virtual_set {
            d.extend(gbdt_analysis::lint_source(rel, src));
        }
        d
    };

    if json {
        println!("{}", gbdt_analysis::diagnostics_to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}\n");
        }
        if diags.is_empty() {
            eprintln!("gbdt-lint: clean");
        } else {
            eprintln!("gbdt-lint: {} error(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("gbdt-lint: {err}");
    eprintln!("usage: gbdt-lint [--root PATH] [--json] [--protocol] [--model-check] [FILE...]");
    ExitCode::from(2)
}
