//! `gbdt-lint` — the workspace determinism / deadlock-freedom gate.
//!
//! ```text
//! gbdt-lint [--root PATH] [--json] [--protocol] [FILE...]
//! ```
//!
//! With no `FILE` arguments, lints every product source in the workspace
//! (`crates/*/src/**`, `examples/`). Explicit files are linted under their
//! workspace-relative paths, so rule scoping behaves identically. Exits 1
//! if any diagnostic fires; `--json` emits a machine-readable array for
//! CI; `--protocol` prints the per-function collective schedule of every
//! trainer instead of linting.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut protocol = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--json" => json = true,
            "--protocol" => protocol = true,
            "--help" | "-h" => {
                println!("usage: gbdt-lint [--root PATH] [--json] [--protocol] [FILE...]");
                println!("\nrules:");
                for (id, summary) in gbdt_analysis::rules::RULES {
                    println!("  {id:<24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = root.or_else(|| gbdt_analysis::find_workspace_root(&cwd)) else {
        return usage("could not find a workspace root (no Cargo.toml with [workspace] above cwd)");
    };

    if protocol {
        return match gbdt_analysis::workspace_protocol_report(&root) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => usage(&format!("failed to read workspace: {e}")),
        };
    }

    let diags = if files.is_empty() {
        match gbdt_analysis::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => return usage(&format!("failed to read workspace: {e}")),
        }
    } else {
        let mut d = Vec::new();
        for f in &files {
            // Normalize to a workspace-relative path for scope selection.
            let abs = if PathBuf::from(f).is_absolute() { PathBuf::from(f) } else { cwd.join(f) };
            let rel = abs
                .strip_prefix(&root)
                .map(|p| p.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/"))
                .unwrap_or_else(|_| f.clone());
            match std::fs::read_to_string(&abs) {
                Ok(src) => {
                    // Fixtures carry a `//@ path:` directive naming the
                    // workspace location they should be scoped as.
                    let rel = gbdt_analysis::virtual_path(&src).unwrap_or(rel);
                    d.extend(gbdt_analysis::lint_source(&rel, &src));
                }
                Err(e) => return usage(&format!("cannot read {f}: {e}")),
            }
        }
        d
    };

    if json {
        println!("{}", gbdt_analysis::diagnostics_to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}\n");
        }
        if diags.is_empty() {
            eprintln!("gbdt-lint: clean");
        } else {
            eprintln!("gbdt-lint: {} error(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("gbdt-lint: {err}");
    eprintln!("usage: gbdt-lint [--root PATH] [--json] [--protocol] [FILE...]");
    ExitCode::from(2)
}
