//! `gbdt-analysis`: workspace lint + SPMD protocol checker.
//!
//! The reproduction's headline claims — quadrant equivalence, codec
//! invariance, chaos-recovery bit-identity — all reduce to two invariants:
//! *nothing nondeterministic reaches wire bytes or model output*, and
//! *every rank executes the same collective schedule*. The runtime suites
//! sample those properties; this crate checks them structurally, at the
//! source level, on every CI run.
//!
//! Two passes over the same lexed sources:
//! * **Lint** — [`lexer`] (a minimal Rust tokenizer that is sound about
//!   strings, raw strings, char literals, nested block comments, and
//!   `#[cfg(test)]` stripping, and that harvests `// lint: allow(<rule>)`
//!   pragmas), [`rules`] (the deny-by-default catalog
//!   [`rules::RULES`]), and [`protocol`] (collective-schedule
//!   extraction, the rank-branch deadlock rule, the tag registry check).
//! * **Model check** (`gbdt-lint --model-check`) — [`ir`]/[`extract`]
//!   lower every protocol-bearing function to a typed op tree, [`mc`]
//!   exhaustively simulates it for world sizes 1–4 (deadlock, collective
//!   divergence, orphan sends, serve-plane frame coverage, fault-path
//!   closure, dead registry tags), and [`schema`]/[`locks`] gate
//!   encode/decode parity and serve-plane lock ordering.
//!
//! The `gbdt-lint` binary (and the `workspace_is_lint_clean` /
//! `workspace_is_protocol_clean` tests) walk every product source file —
//! `crates/*/src/**` and `examples/` — and fail on any diagnostic. Test
//! code is exempt by construction: the lexer strips `#[cfg(test)]`
//! items, and the workspace walk skips `tests/` directories, whose
//! failure-path exercises are covered by the clippy `unwrap_used` gate
//! instead.

pub mod extract;
pub mod ir;
pub mod lexer;
pub mod locks;
pub mod mc;
pub mod protocol;
pub mod rules;
pub mod schema;

pub use mc::{model_check_files, model_check_workspace, McOutcome};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, in rustc's `file:line:col` shape.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Rule id from [`rules::RULES`].
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule, self.message, self.path, self.line, self.col
        )
    }
}

impl Diagnostic {
    /// Hand-rolled JSON object (this crate has no dependencies on purpose).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":{},"line":{},"col":{},"rule":{},"message":{}}}"#,
            json_str(&self.path),
            self.line,
            self.col,
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

/// Serializes a diagnostic list as a JSON array (one object per line for
/// greppable CI logs).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&d.to_json());
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one file's source text. `rel_path` must be workspace-relative with
/// `/` separators — it selects which rules apply (see the scope functions
/// in [`rules`]).
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    rules::check_file(rel_path, &lexed)
}

/// A `//@ path: <workspace-relative path>` directive, as used by the
/// self-test fixtures to lint a snippet *as if* it lived at a scoped
/// location. Honoured by `gbdt-lint FILE` so fixtures fail from the CLI
/// exactly as they do in the test suite.
pub fn virtual_path(source: &str) -> Option<String> {
    source.lines().find_map(|l| {
        l.trim().strip_prefix("//@ path:").map(|p| p.trim().to_string())
    })
}

/// Splits a fixture into its virtual file set. Multi-file fixtures (the
/// model-check suite needs a registry *and* its users, or a router *and*
/// its replica) mark each section with `//@ file: <workspace-relative
/// path>`; a fixture without such markers is a single file at its
/// `//@ path:` (or `rel`). Header lines before the first marker are
/// dropped.
pub fn virtual_files(rel: &str, source: &str) -> Vec<(String, String)> {
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in source.lines() {
        if let Some(p) = line.trim().strip_prefix("//@ file:") {
            sections.push((p.trim().to_string(), String::new()));
        } else if let Some((_, body)) = sections.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    if sections.is_empty() {
        vec![(
            virtual_path(source).unwrap_or_else(|| rel.to_string()),
            source.to_string(),
        )]
    } else {
        sections
    }
}

/// Walks the workspace at `root` and lints every product source file.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for (rel, src) in workspace_sources(root)? {
        diags.extend(lint_source(&rel, &src));
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col).cmp(&(b.path.as_str(), b.line, b.col))
    });
    Ok(diags)
}

/// The `--protocol` report over the workspace's trainer files.
pub fn workspace_protocol_report(root: &Path) -> io::Result<String> {
    let files: Vec<(String, lexer::Lexed)> = workspace_sources(root)?
        .into_iter()
        .map(|(rel, src)| (rel, lexer::lex(&src)))
        .collect();
    Ok(protocol::protocol_report(&files))
}

/// Collects `(workspace-relative path, source)` for every linted file:
/// `crates/*/src/**/*.rs` plus `examples/*.rs`. Skips `target/`, vendored
/// `shims/`, and all `tests/` trees (test code is covered by other gates).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut files)?;
    }
    let mut out = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, fs::read_to_string(&f)?));
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
