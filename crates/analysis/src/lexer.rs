//! A small Rust lexer: just enough tokenization for source-level invariant
//! checking, and not a token more.
//!
//! The rules in this crate match on *token sequences* (`Instant :: now`,
//! `. drain (`), so the lexer's one job is to make those matches sound:
//! nothing inside a string, raw string, char literal, or (nested) block
//! comment may ever surface as a token. Comments are not entirely
//! discarded — line comments are scanned for `// lint: allow(<rule>)`
//! pragmas, the per-line escape hatch the rule engine honours.
//!
//! `#[cfg(test)]` items and `#[test]` functions are stripped after lexing:
//! test code exercises failure paths on purpose (`unwrap()` on comm results,
//! deliberate panics) and is covered by the existing clippy gate instead.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// One lexical token. Literal payloads are not kept — no rule needs the
/// contents of a string, only the fact that it is *not* code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `rank`, `HashMap`, ...).
    Ident(String),
    /// Single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// Numeric literal, verbatim (needed for tag-value uniqueness checks).
    Num(String),
    /// Any string / byte-string / char literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Lexed file: tokens (with test code already stripped) plus the allow
/// pragmas collected from comments, keyed by line number.
#[derive(Clone)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `line -> rules` from `// lint: allow(rule-a, rule-b) — reason`.
    /// A pragma suppresses diagnostics on its own line and the next line,
    /// so it can trail the offending statement or sit just above it.
    pub pragmas: BTreeMap<u32, Vec<String>>,
    /// `(pragma line, rule)` pairs that actually suppressed a finding —
    /// recorded by [`Lexed::allowed`] so the `stale-pragma` rule can flag
    /// allowlist entries that no longer earn their keep.
    pub used: RefCell<BTreeSet<(u32, String)>>,
}

impl Lexed {
    /// Whether `rule` is allowed at `line` by a pragma on that line or the
    /// line directly above it. A hit is recorded against the pragma's own
    /// line for stale-pragma accounting.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        for l in [line, line.saturating_sub(1)] {
            if let Some(rules) = self.pragmas.get(&l) {
                if rules.iter().any(|r| r == rule) {
                    self.used.borrow_mut().insert((l, rule.to_string()));
                    return true;
                }
            }
        }
        false
    }
}

/// Tokenizes `source`, strips test-only items, and collects allow pragmas.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer::new(source);
    lx.run();
    let tokens = strip_test_items(lx.tokens);
    Lexed { tokens, pragmas: lx.pragmas, used: RefCell::new(BTreeSet::new()) }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    pragmas: BTreeMap<u32, Vec<String>>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1, tokens: Vec::new(), pragmas: BTreeMap::new() }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32, col: u32) {
        self.tokens.push(Token { tok, line, col });
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let (line, col) = (self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.bump();
                    self.string_body();
                    self.push(Tok::Literal, line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                b'r' | b'b' if self.raw_or_byte_literal(line, col) => {}
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c as char), line, col);
                }
            }
        }
    }

    /// Consumes `// ...` to end of line, harvesting a `lint: allow(...)`
    /// pragma if present. Doc comments (`///`, `//!`) are documentation,
    /// not directives — prose *describing* the pragma syntax must never
    /// act as (or be flagged as) a pragma.
    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        if text.starts_with("///") || text.starts_with("//!") {
            return;
        }
        if let Some(rules) = parse_pragma(text) {
            self.pragmas.entry(line).or_default().extend(rules);
        }
    }

    /// Consumes `/* ... */`, honouring nesting as Rust does.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a string body after the opening quote (escapes honoured).
    fn string_body(&mut self) {
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A quote followed by
    /// an identifier char is a lifetime unless a closing quote follows one
    /// character later.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening '
        let c = self.peek(0);
        if c == b'\\' {
            self.bump();
            self.bump(); // the escaped char
            // Multi-char escapes like '\x7f' / '\u{..}': scan to closing '.
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            self.push(Tok::Literal, line, col);
        } else if (c == b'_' || c.is_ascii_alphanumeric()) && self.peek(1) != b'\'' {
            while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                self.bump();
            }
            self.push(Tok::Lifetime, line, col);
        } else {
            self.bump(); // the char
            if self.peek(0) == b'\'' {
                self.bump();
            }
            self.push(Tok::Literal, line, col);
        }
    }

    /// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
    /// and byte chars (`b'x'`). Returns false if the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0);
        let mut i = 1;
        if c0 == b'b' && (self.peek(1) == b'r' || self.peek(1) == b'"' || self.peek(1) == b'\'') {
            if self.peek(1) == b'\'' {
                // b'x' byte char
                self.bump(); // b
                self.char_or_lifetime(line, col);
                return true;
            }
            if self.peek(1) == b'r' {
                i = 2;
            }
        } else if c0 != b'r' {
            return false;
        }
        // From src[pos+i]: zero or more '#' then '"' makes this raw.
        let mut hashes = 0usize;
        while self.peek(i + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(i + hashes) != b'"' {
            if i == 2 && self.peek(1) == b'"' {
                // b"..." plain byte string
                self.bump(); // b
                self.bump(); // "
                self.string_body();
                self.push(Tok::Literal, line, col);
                return true;
            }
            if c0 == b'b' && self.peek(1) == b'"' {
                self.bump();
                self.bump();
                self.string_body();
                self.push(Tok::Literal, line, col);
                return true;
            }
            return false;
        }
        // Consume prefix, hashes, opening quote.
        for _ in 0..(i + hashes + 1) {
            self.bump();
        }
        // Raw string: ends at '"' followed by `hashes` '#' chars, no escapes.
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for h in 0..hashes {
                    if self.peek(h) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Literal, line, col);
        true
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("").to_string();
        self.push(Tok::Ident(text), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while {
            let c = self.peek(0);
            c == b'_'
                || c.is_ascii_alphanumeric()
                // Decimal point — but never eat a `..` range operator
                // (`0..n` must stay three tokens).
                || (c == b'.' && self.peek(1).is_ascii_digit())
        } {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("").to_string();
        self.push(Tok::Num(text), line, col);
    }
}

/// Parses `lint: allow(rule-a, rule-b)` out of a line comment's text.
/// Rule names use kebab-case; anything after the closing paren (a `— why`
/// justification) is ignored but encouraged.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:")?;
    let rest = comment[at + 5..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Removes `#[cfg(test)]` items and `#[test]` functions from the token
/// stream. The item following the attribute is skipped up to its closing
/// brace (or trailing semicolon for `mod tests;` declarations).
fn strip_test_items(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_attr_end(&tokens, i) {
            // Skip past any further attributes, then the item itself.
            let mut j = end;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attribute(&tokens, j);
            }
            i = skip_item(&tokens, j);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// If tokens at `i` start a `#[cfg(test)]` or `#[test]` attribute, returns
/// the index just past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let head = tokens.get(i + 2)?.ident()?;
    let is_test = match head {
        "test" => tokens.get(i + 3)?.is_punct(']'),
        "cfg" => {
            tokens.get(i + 3)?.is_punct('(')
                && tokens.get(i + 4)?.ident() == Some("test")
                && tokens.get(i + 5)?.is_punct(')')
        }
        _ => false,
    };
    if !is_test {
        return None;
    }
    // Scan to the matching `]`.
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    Some(j)
}

/// Skips one `#[...]` attribute starting at `i`, returning the index past it.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skips one item (to its closing brace, or `;` if braceless), returning the
/// index past it.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(';') {
            return j + 1;
        }
        if tokens[j].is_punct('{') {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_never_tokenize() {
        let src = r###"
            // a line comment with unwrap() inside
            /* block /* nested */ still comment unwrap() */
            let s = "calls unwrap() in a string";
            let r = r#"raw with all_reduce_f64("#;
            let c = 'u';
            let b = b"bytes unwrap()";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"all_reduce_f64".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; }";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let lexed = lex("for i in 0..n_trees {}");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Num("0".into())));
    }

    #[test]
    fn pragmas_are_collected_with_rules() {
        let src = "let x = 1; // lint: allow(map-iteration, wall-clock) — justified\n";
        let lexed = lex(src);
        assert!(lexed.allowed("map-iteration", 1));
        assert!(lexed.allowed("wall-clock", 1));
        assert!(lexed.allowed("map-iteration", 2)); // next line too
        assert!(!lexed.allowed("slice-index", 1));
        assert!(!lexed.allowed("map-iteration", 3));
    }

    #[test]
    fn cfg_test_items_are_stripped() {
        let src = r#"
            fn keep_me() {}
            #[cfg(test)]
            mod tests {
                fn dropped() { x.unwrap(); }
            }
            fn also_kept() {}
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"keep_me".to_string()));
        assert!(ids.contains(&"also_kept".to_string()));
        assert!(!ids.contains(&"dropped".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn test_fns_are_stripped_with_stacked_attributes() {
        let src = r#"
            #[test]
            #[should_panic(expected = "boom")]
            fn dies() { panic!("boom"); }
            fn stays() {}
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"dies".to_string()));
        assert!(ids.contains(&"stays".to_string()));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(feature = \"x\")] fn kept() {}";
        assert!(idents(src).contains(&"kept".to_string()));
    }

    #[test]
    fn hex_numbers_with_underscores_lex_whole() {
        let lexed = lex("const T: u64 = 0x7261_7274;");
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Num("0x7261_7274".into())));
    }
}
