//! The lint gate: fixture self-tests, the workspace cleanliness invariant,
//! and injection tests proving the gate actually catches the regressions it
//! claims to (rank-conditional collectives, unsorted hash drains).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis has a workspace two levels up")
        .to_path_buf()
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `//@ path:` / `//@ expect:` directives a fixture carries.
fn directives(source: &str) -> (String, BTreeSet<String>) {
    let mut path = None;
    let mut expect = BTreeSet::new();
    for line in source.lines() {
        let line = line.trim();
        if let Some(p) = line.strip_prefix("//@ path:") {
            path = Some(p.trim().to_string());
        } else if let Some(e) = line.strip_prefix("//@ expect:") {
            for rule in e.split(',') {
                expect.insert(rule.trim().to_string());
            }
        }
    }
    (path.expect("fixture must carry a //@ path: directive"), expect)
}

fn fired_rules(path: &str, source: &str) -> BTreeSet<String> {
    gbdt_analysis::lint_source(path, source)
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect()
}

/// Every `bad_*.rs` fixture fires exactly the rule set it declares, and the
/// clean fixture fires nothing — under the strictest (trainer) scope.
#[test]
fn fixtures_fire_exactly_their_declared_rules() {
    let dir = fixtures_dir();
    let mut seen_bad = 0;
    let mut seen_clean = 0;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found in {}", dir.display());

    for fixture in entries {
        let name = fixture.file_name().unwrap().to_string_lossy().to_string();
        let source = fs::read_to_string(&fixture).expect("fixture is readable");
        let (virtual_path, expect) = directives(&source);
        let fired = fired_rules(&virtual_path, &source);
        if name.starts_with("bad_") {
            seen_bad += 1;
            assert!(!expect.is_empty(), "{name}: bad fixture must declare //@ expect:");
            assert_eq!(
                fired, expect,
                "{name} (as {virtual_path}): fired {fired:?}, expected {expect:?}"
            );
            covered.extend(expect);
        } else {
            seen_clean += 1;
            assert!(expect.is_empty(), "{name}: clean fixture must not declare //@ expect:");
            assert!(
                fired.is_empty(),
                "{name} (as {virtual_path}): clean fixture fired {fired:?}"
            );
        }
    }
    // At least one bad fixture per rule in the catalog (a rule may have
    // several — e.g. the out-of-registry and duplicate-value flavors of
    // tag-registry), plus the clean files.
    assert!(seen_bad >= gbdt_analysis::rules::RULES.len(), "a bad fixture per rule at minimum");
    let catalog: BTreeSet<String> =
        gbdt_analysis::rules::RULES.iter().map(|(name, _)| name.to_string()).collect();
    assert_eq!(covered, catalog, "every cataloged rule needs a bad fixture proving it fires");
    assert!(seen_clean >= 1, "at least one clean fixture");
}

/// Tier-1 gate: the shipped workspace is lint-clean. Any new hash-order
/// iteration, wall-clock read, comm-layer panic, rank-conditional
/// collective, or stray tag constant fails this test (and CI) at the line
/// that introduced it.
#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let diags = gbdt_analysis::lint_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has {} lint error(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}

/// The workspace walk actually covers the trainers and the comm layer —
/// guards against the gate going green by silently walking nothing.
#[test]
fn workspace_walk_covers_product_sources() {
    let root = workspace_root();
    let sources = gbdt_analysis::workspace_sources(&root).expect("workspace walk succeeds");
    let paths: BTreeSet<&str> = sources.iter().map(|(p, _)| p.as_str()).collect();
    for must in [
        "crates/quadrants/src/qd1.rs",
        "crates/quadrants/src/qd2.rs",
        "crates/quadrants/src/qd3.rs",
        "crates/quadrants/src/qd4.rs",
        "crates/quadrants/src/yggdrasil.rs",
        "crates/quadrants/src/featpar.rs",
        "crates/cluster/src/comm.rs",
        "crates/cluster/src/collectives.rs",
        "crates/cluster/src/ps.rs",
        "crates/core/src/histogram.rs",
    ] {
        assert!(paths.contains(must), "workspace walk missed {must}");
    }
}

/// Acceptance check: injecting a rank-conditional collective into a real
/// trainer makes the gate fail.
#[test]
fn injected_rank_conditional_collective_fails_the_gate() {
    let root = workspace_root();
    for trainer in ["qd1.rs", "qd2.rs", "qd3.rs", "qd4.rs", "yggdrasil.rs", "featpar.rs"] {
        let rel = format!("crates/quadrants/src/{trainer}");
        let mut source = fs::read_to_string(root.join(&rel)).expect("trainer source readable");
        assert!(fired_rules(&rel, &source).is_empty(), "{rel} must start clean");
        source.push_str(
            "\n\npub fn injected_sync(ctx: &mut WorkerCtx, buf: &mut [f64]) -> Result<(), CommError> {\n\
             \x20   if ctx.rank() == 0 {\n\
             \x20       ctx.comm.all_reduce_f64(buf)?;\n\
             \x20   }\n\
             \x20   Ok(())\n\
             }\n",
        );
        let fired = fired_rules(&rel, &source);
        assert!(
            fired.contains("rank-branch-collective"),
            "{rel}: injected deadlock not caught; fired {fired:?}"
        );
    }
}

/// Acceptance check: injecting an unsorted `HashMap` drain into a real
/// trainer makes the gate fail.
#[test]
fn injected_hashmap_drain_fails_the_gate() {
    let root = workspace_root();
    for trainer in ["qd1.rs", "qd2.rs", "qd3.rs", "qd4.rs", "yggdrasil.rs", "featpar.rs"] {
        let rel = format!("crates/quadrants/src/{trainer}");
        let mut source = fs::read_to_string(root.join(&rel)).expect("trainer source readable");
        source.push_str(
            "\n\npub fn injected_drain(map: &mut std::collections::HashMap<u32, f64>) -> Vec<(u32, f64)> {\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for (k, v) in map.drain() {\n\
             \x20       out.push((k, v));\n\
             \x20   }\n\
             \x20   out\n\
             }\n",
        );
        let fired = fired_rules(&rel, &source);
        assert!(
            fired.contains("map-iteration"),
            "{rel}: injected hash drain not caught; fired {fired:?}"
        );
    }
}

/// A pragma only licenses the rule it names — `allow(wall-clock)` does not
/// quiet a map-iteration finding on the same line.
#[test]
fn pragma_is_rule_specific() {
    let src = "\
use std::collections::HashMap;
pub fn f(m: &HashMap<u32, f64>) -> f64 {
    let mut s = 0.0;
    // lint: allow(wall-clock) — wrong rule on purpose
    for v in m.values() { s += v; }
    s
}
";
    let fired = fired_rules("crates/core/src/x.rs", src);
    assert!(fired.contains("map-iteration"), "mismatched pragma must not suppress: {fired:?}");

    let src_ok = src.replace("allow(wall-clock)", "allow(map-iteration)");
    let fired_ok = fired_rules("crates/core/src/x.rs", &src_ok);
    assert!(fired_ok.is_empty(), "matching pragma must suppress: {fired_ok:?}");
}

/// Scoping: the same source is clean outside the rule's scope and dirty
/// inside it.
#[test]
fn rules_respect_path_scopes() {
    let src = "pub fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
    // bench is a sanctioned timing site; trainers are not.
    assert!(fired_rules("crates/bench/src/run.rs", src).is_empty());
    assert!(fired_rules("crates/cluster/src/stats.rs", src).is_empty());
    let fired = fired_rules("crates/quadrants/src/qd1.rs", src);
    assert!(fired.contains("wall-clock"), "{fired:?}");
    // In the serving crate only stats.rs may read the clock; the
    // traversal/server modules are inside the rule's scope.
    assert!(fired_rules("crates/serve/src/stats.rs", src).is_empty());
    for serve_path in ["crates/serve/src/exec.rs", "crates/serve/src/server.rs"] {
        let fired = fired_rules(serve_path, src);
        assert!(fired.contains("wall-clock"), "{serve_path}: {fired:?}");
    }
}
