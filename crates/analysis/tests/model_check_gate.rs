//! The model-check gate: fixture self-tests for every checker rule, the
//! workspace protocol-cleanliness invariant, schedule-coverage assertions,
//! and injection tests that corrupt real trainer/serving sources in memory
//! and prove the checker catches each corruption.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis has a workspace two levels up")
        .to_path_buf()
}

fn mc_fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mc")
}

/// Parses the `//@ expect:` directive a fixture carries (may be absent for
/// clean fixtures; `//@ path:` is optional because multi-file fixtures name
/// their sections with `//@ file:` instead).
fn expected_rules(source: &str) -> BTreeSet<String> {
    let mut expect = BTreeSet::new();
    for line in source.lines() {
        if let Some(e) = line.trim().strip_prefix("//@ expect:") {
            for rule in e.split(',') {
                expect.insert(rule.trim().to_string());
            }
        }
    }
    expect
}

fn mc_fired(files: &[(String, String)]) -> BTreeSet<String> {
    gbdt_analysis::model_check_files(files)
        .diags
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect()
}

/// Every `bad_*.rs` fixture in `fixtures/mc/` fires exactly the rule set it
/// declares, every `clean_*.rs` fixture fires nothing, and together the bad
/// fixtures cover the whole model-check catalog.
#[test]
fn mc_fixtures_fire_exactly_their_declared_rules() {
    let dir = mc_fixtures_dir();
    let mut seen_bad = 0;
    let mut seen_clean = 0;
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("mc fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found in {}", dir.display());

    for fixture in entries {
        let name = fixture.file_name().unwrap().to_string_lossy().to_string();
        let source = fs::read_to_string(&fixture).expect("fixture is readable");
        let expect = expected_rules(&source);
        let files = gbdt_analysis::virtual_files(&name, &source);
        let fired = mc_fired(&files);
        if name.starts_with("bad_") {
            seen_bad += 1;
            assert!(!expect.is_empty(), "{name}: bad fixture must declare //@ expect:");
            assert_eq!(fired, expect, "{name}: fired {fired:?}, expected {expect:?}");
            covered.extend(expect);
        } else {
            seen_clean += 1;
            assert!(expect.is_empty(), "{name}: clean fixture must not declare //@ expect:");
            assert!(fired.is_empty(), "{name}: clean fixture fired {fired:?}");
        }
    }
    let catalog: BTreeSet<String> =
        gbdt_analysis::mc::MC_RULES.iter().map(|(name, _)| name.to_string()).collect();
    assert_eq!(covered, catalog, "every model-check rule needs a bad fixture proving it fires");
    assert!(seen_bad >= 1 && seen_clean >= 2, "bad and clean fixtures both present");
}

/// Tier-1 gate: the shipped workspace model-checks clean. Every extracted
/// schedule completes without deadlock, divergence, or orphan messages for
/// world sizes 1-4, the serving frame machine covers every emitted tag, the
/// fault path is closed, and the wire schemas and lock orders agree.
#[test]
fn workspace_is_protocol_clean() {
    let root = workspace_root();
    let outcome = gbdt_analysis::model_check_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = outcome.diags.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.diags.is_empty(),
        "workspace has {} model-check error(s):\n{}",
        outcome.diags.len(),
        rendered.join("\n")
    );
    let verified = outcome.units.iter().filter(|u| u.skipped.is_none()).count();
    assert!(verified >= 20, "only {verified} schedules verified — extraction has regressed");
}

/// The extracted units actually cover the collectives layer, every trainer,
/// and the Vero system — guards against the checker going green by silently
/// extracting nothing.
#[test]
fn units_cover_collectives_and_trainers() {
    let root = workspace_root();
    let outcome = gbdt_analysis::model_check_workspace(&root).expect("workspace walk succeeds");
    let verified: BTreeSet<(&str, &str)> = outcome
        .units
        .iter()
        .filter(|u| u.skipped.is_none())
        .map(|u| (u.path.as_str(), u.name.as_str()))
        .collect();
    for (path, name) in [
        ("crates/cluster/src/collectives.rs", "broadcast"),
        ("crates/cluster/src/collectives.rs", "gather"),
        ("crates/cluster/src/collectives.rs", "all_gather"),
        ("crates/cluster/src/collectives.rs", "reduce_scatter_f64"),
        ("crates/cluster/src/ps.rs", "ps_push_and_reduce"),
        ("crates/partition/src/transform.rs", "all_to_all"),
        ("crates/partition/src/transform.rs", "build_global_cuts"),
    ] {
        assert!(verified.contains(&(path, name)), "no verified schedule for {path}::{name}");
    }
    for path in [
        "crates/quadrants/src/qd1.rs",
        "crates/quadrants/src/qd2.rs",
        "crates/quadrants/src/qd3.rs",
        "crates/quadrants/src/qd4.rs",
        "crates/quadrants/src/yggdrasil.rs",
        "crates/quadrants/src/featpar.rs",
        "crates/vero/src/system.rs",
    ] {
        assert!(
            verified.iter().any(|(p, _)| *p == path),
            "no verified schedule extracted from {path}"
        );
    }
}

/// Loads the workspace sources and applies `mutate` to the one file at
/// `rel`, returning the full mutated file set.
fn mutated_workspace(root: &Path, rel: &str, mutate: impl Fn(&str) -> String) -> Vec<(String, String)> {
    let mut files = gbdt_analysis::workspace_sources(root).expect("workspace walk succeeds");
    let slot = files
        .iter_mut()
        .find(|(p, _)| p == rel)
        .unwrap_or_else(|| panic!("{rel} not in workspace walk"));
    let mutated = mutate(&slot.1);
    assert_ne!(mutated, slot.1, "mutation of {rel} must change the source");
    slot.1 = mutated;
    files
}

fn rules_at(files: &[(String, String)], rel: &str) -> BTreeSet<String> {
    gbdt_analysis::model_check_files(files)
        .diags
        .into_iter()
        .filter(|d| d.path == rel)
        .map(|d| d.rule.to_string())
        .collect()
}

/// Acceptance check: a rank-conditional collective injected into each real
/// trainer is caught by the simulator as a divergent rendezvous.
#[test]
fn injected_rank_conditional_collective_fails_the_model_check() {
    let root = workspace_root();
    for trainer in ["qd1.rs", "qd2.rs", "qd3.rs", "qd4.rs", "yggdrasil.rs", "featpar.rs"] {
        let rel = format!("crates/quadrants/src/{trainer}");
        let files = mutated_workspace(&root, &rel, |src| {
            let mut s = src.to_string();
            s.push_str(
                "\n\npub fn injected_sync(ctx: &mut WorkerCtx, buf: &mut [f64]) -> Result<(), CommError> {\n\
                 \x20   if ctx.comm.rank() == 0 {\n\
                 \x20       ctx.comm.all_reduce_f64(buf)?;\n\
                 \x20   }\n\
                 \x20   Ok(())\n\
                 }\n",
            );
            s
        });
        let fired = rules_at(&files, &rel);
        assert!(
            fired.contains("mc-collective-divergence"),
            "{rel}: injected divergence not caught; fired {fired:?}"
        );
    }
}

/// Acceptance check: retagging the repartition receive so it no longer
/// matches the send makes the all-to-all schedule deadlock in simulation.
#[test]
fn injected_tag_mismatch_deadlocks_the_repartition() {
    let root = workspace_root();
    let rel = "crates/partition/src/transform.rs";
    let files = mutated_workspace(&root, rel, |src| {
        src.replace(
            "ctx.comm.recv(from, REPARTITION_A2A_TAG)",
            "ctx.comm.recv(from, SERVE_REQUEST_TAG)",
        )
    });
    let fired = rules_at(&files, rel);
    assert!(fired.contains("mc-deadlock"), "{rel}: tag mismatch not caught; fired {fired:?}");
}

/// Acceptance check: a receive-before-send ring appended to the collectives
/// layer is caught as a cyclic wait.
#[test]
fn injected_recv_before_send_ring_deadlocks() {
    let root = workspace_root();
    let rel = "crates/cluster/src/collectives.rs";
    let files = mutated_workspace(&root, rel, |src| {
        let mut s = src.to_string();
        s.push_str(
            "\n\nimpl Communicator {\n\
             \x20   pub fn injected_ring_exchange(&self, payload: Bytes) -> Result<Bytes, CommError> {\n\
             \x20       let tag = self.alloc_collective_tag();\n\
             \x20       let next = (self.rank() + 1) % self.world();\n\
             \x20       let prev = (self.rank() + self.world() - 1) % self.world();\n\
             \x20       let got = self.recv(prev, tag)?;\n\
             \x20       self.send(next, tag, payload)?;\n\
             \x20       Ok(got)\n\
             \x20   }\n\
             }\n",
        );
        s
    });
    let fired = rules_at(&files, rel);
    assert!(fired.contains("mc-deadlock"), "{rel}: injected ring not caught; fired {fired:?}");
}

/// Acceptance check: mistagging the replica's health reply as a PING makes
/// it a frame the router never listens for.
#[test]
fn injected_health_pong_mistag_orphans_the_frame() {
    let root = workspace_root();
    let rel = "crates/serve/src/replica.rs";
    let files = mutated_workspace(&root, rel, |src| {
        src.replace("SERVE_HEALTH_PONG_TAG", "SERVE_HEALTH_PING_TAG")
    });
    let fired = rules_at(&files, rel);
    assert!(
        fired.contains("mc-orphan-frame"),
        "{rel}: mistagged health reply not caught; fired {fired:?}"
    );
}
