//@ path: crates/quadrants/src/qd2.rs
//@ expect: rank-branch-collective
// Known-bad: the canonical SPMD deadlock. Rank 0 enters the all-reduce;
// every other rank never reaches the rendezvous and blocks forever.

pub fn train_layer(ctx: &mut WorkerCtx, buf: &mut [f64]) -> Result<(), CommError> {
    let rank = ctx.rank();
    if rank == 0 {
        ctx.comm.all_reduce_f64(buf)?;
    }
    Ok(())
}
