//@ path: crates/serve/src/pool.rs
//@ expect: map-iteration
// Known-bad: draining a HashMap of per-chunk results in hash order. The
// pool must reassemble chunk outputs by fixed chunk index — concatenating
// them in hash-iteration order would shuffle rows nondeterministically
// and break bit-identity with the sequential executor.

use std::collections::HashMap;

pub fn gather_chunks(done: &mut HashMap<usize, Vec<f32>>) -> Vec<f32> {
    let mut out = Vec::new();
    for (_idx, chunk) in done.drain() {
        out.extend(chunk);
    }
    out
}
