//@ path: crates/cluster/src/comm.rs
//@ expect: tag-registry
// Known-bad: the two heartbeat directions sharing one frame tag. A ping
// that decodes as a pong makes the router see its own probe as a healthy
// reply — the replica group would never mark a dead replica Down. The
// registry checker must flag the collision even though both constants are
// registered in the right place with plausible names.

pub mod protocol {
    /// Health probe: router → replica.
    pub const SERVE_HEALTH_PING_TAG: u64 = 0x7376_6870;
    /// Health reply: replica → router — must NOT share the probe's value.
    pub const SERVE_HEALTH_PONG_TAG: u64 = 0x7376_6870;
}
