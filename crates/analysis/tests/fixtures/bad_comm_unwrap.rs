//@ path: crates/quadrants/src/featpar.rs
//@ expect: comm-unwrap
// Known-bad: unwrapping a comm result turns a recoverable CommError (drop,
// timeout, peer crash) into a worker abort that bypasses supervision.

pub fn aggregate(ctx: &mut WorkerCtx, buf: &mut [f64]) {
    ctx.comm.all_reduce_f64(buf).unwrap();
    let reply = ctx.comm.recv(0, 7).expect("peer always answers");
    drop(reply);
}
