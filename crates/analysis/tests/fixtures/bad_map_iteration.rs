//@ path: crates/core/src/bad_map.rs
//@ expect: map-iteration
// Known-bad: draining a HashMap in hash order feeds nondeterministic
// ordering straight into the output vector.

use std::collections::HashMap;

pub fn leak_hash_order(stats: &mut HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    for (k, v) in stats.drain() {
        out.push((k, v));
    }
    out
}
