//@ path: crates/quadrants/src/qd3.rs
//@ expect: fault-point
// Known-bad: a per-tree trainer loop that never polls fault_point — an
// injected crash can only land mid-tree, where no checkpoint can recover.

pub fn train_worker(ctx: &mut WorkerCtx, config: &TrainConfig) -> Result<(), CommError> {
    for t in 0..config.n_trees {
        grow_tree(ctx, t)?;
    }
    Ok(())
}
