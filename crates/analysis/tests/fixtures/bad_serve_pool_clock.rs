//@ path: crates/serve/src/pool.rs
//@ expect: wall-clock
// Known-bad: a wall-clock read inside the parallel-scoring pool. A clock
// next to the chunk scheduler invites "adaptive" splitting — chunk sizes
// that depend on observed timing would make the executor's output depend
// on machine load, breaking the fixed-64-row-chunk determinism contract.
// Only crates/serve/src/stats.rs may hold the serving stopwatch.

use std::time::Instant;

pub fn score_chunk_timed(rows: &[f32], out: &mut [f32]) -> f64 {
    let t0 = Instant::now();
    for (o, r) in out.iter_mut().zip(rows) {
        *o = r * 2.0;
    }
    t0.elapsed().as_secs_f64()
}
