//@ path: crates/partition/src/bad_tag.rs
//@ expect: tag-registry
// Known-bad: a manual message tag declared outside gbdt_cluster::protocol.
// Uniqueness against other protocols is unverifiable from here.

const SHUFFLE_TAG: u64 = 0x1234;

pub fn tag() -> u64 {
    SHUFFLE_TAG
}
