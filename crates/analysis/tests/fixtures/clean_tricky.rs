//@ path: crates/quadrants/src/qd4.rs
// Clean file under the strictest scope (a trainer): every construct below
// LOOKS like a violation to a naive matcher but is fine — strings,
// comments, raw strings, sorted iteration, rank-conditional payloads with
// the collective hoisted out, pragma-justified loops, and test-only code.

use std::collections::HashMap;

/* A block comment quoting bad code:
   /* nested! */ ctx.comm.all_reduce_f64(buf).unwrap(); panic!("boom");
   still inside the comment. */

pub fn train_worker(ctx: &mut WorkerCtx, config: &TrainConfig) -> Result<(), CommError> {
    // A commented-out deadlock must not fire:
    // if rank == 0 { ctx.comm.all_reduce_f64(&mut buf)?; }
    let diag = "call .unwrap() and panic! and Instant::now() loudly";
    let raw = r#"for (k, v) in map.drain() { HashMap::new(); }"#;
    let marker = 'u';
    let bytes = b"unwrap() in a byte string";
    log(diag, raw, marker, bytes);

    for t in 0..config.n_trees {
        ctx.fault_point(t, 0);
        let rank = ctx.rank();
        let owner = t % ctx.world();
        // Rank-conditional *payload*, symmetric collective: the sanctioned
        // pattern. Every rank reaches the broadcast.
        let payload = if rank == owner { encode_tree(t) } else { Bytes::new() };
        let full = ctx.comm.broadcast(owner, payload)?;
        apply(full)?;
    }
    Ok(())
}

/// Hash iteration immediately sorted is deterministic and allowed.
pub fn sorted_keys(pool: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = pool.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Order-insensitive reduction over a hash map, justified in place.
pub fn total(pool: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    // lint: allow(map-iteration) — f64 sum reordering is absorbed before any wire use
    for v in pool.values() {
        sum += v;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_comm_results() {
        let mut buf = vec![1.0];
        ctx.comm.all_reduce_f64(&mut buf).unwrap();
        if rank == 0 {
            ctx.comm.broadcast(0, payload).unwrap();
        }
        panic!("test-only panics are the clippy gate's business");
    }
}
