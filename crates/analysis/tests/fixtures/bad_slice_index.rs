//@ path: crates/cluster/src/ps.rs
//@ expect: slice-index
// Known-bad: unchecked element indexing in the comm layer. The range
// subscript below is fine (bulk view) and must NOT fire.

pub fn shard_of(ranges: &[(usize, usize)], buf: &[f64], r: usize) -> f64 {
    let (lo, hi) = ranges[r];
    let view = &buf[lo..hi];
    view.iter().sum()
}
