//@ path: crates/core/src/bad_env.rs
//@ expect: ambient-env
// Known-bad: process environment and thread identity are ambient inputs a
// trainer must never consult.

use std::thread;

pub fn ambient_inputs() -> usize {
    let from_env = std::env::var("GBDT_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    let tid = format!("{:?}", thread::current().id());
    from_env + tid.len()
}
