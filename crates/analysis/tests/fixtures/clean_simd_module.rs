//@ path: crates/core/src/kernels/simd.rs
// Clean: the audited SIMD module is the one place `unsafe` is licensed.
// The same tokens at any other path fire unsafe-outside-simd (see
// bad_unsafe_outside_simd.rs).

pub fn add_pair(data: &mut [f64], idx: usize, g: f64, h: f64) {
    debug_assert!(idx + 1 < data.len());
    // SAFETY: callers prove `idx + 1 < data.len()` from the lane-group
    // range check.
    unsafe {
        *data.get_unchecked_mut(idx) += g;
        *data.get_unchecked_mut(idx + 1) += h;
    }
}
