//@ path: crates/serve/src/exec.rs
//@ expect: wall-clock
// Known-bad: a wall-clock read inside a serving traversal kernel. Only
// crates/serve/src/stats.rs is allowlisted — a clock in the scoring hot
// path both perturbs the measurement and parks nondeterminism next to
// the bit-identity contract, so the rule must still fire here.

use std::time::Instant;

pub fn traverse_timed(nodes: &[u32], mut idx: usize) -> (usize, f64) {
    let t0 = Instant::now();
    for _ in 0..8 {
        idx = nodes.get(idx).copied().unwrap_or(0) as usize;
    }
    (idx, t0.elapsed().as_secs_f64())
}
