//@ path: crates/core/src/histogram.rs
//@ expect: stale-pragma
//! An allow pragma that suppresses nothing must itself be flagged, so
//! allowlists cannot outlive the code they once excused.

/// Fully deterministic: iterates a slice, not a hash map — the pragma
/// below earns nothing.
pub fn total(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    // lint: allow(map-iteration) — stale: the HashMap this excused is long gone
    for v in values {
        sum += *v;
    }
    sum
}

/// A rule name that does not exist is equally dead weight.
pub fn count(values: &[f64]) -> usize {
    // lint: allow(map-iteratoin) — typo'd rule name never matched anything
    values.len()
}
