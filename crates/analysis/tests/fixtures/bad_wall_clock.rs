//@ path: crates/quadrants/src/bad_clock.rs
//@ expect: wall-clock
// Known-bad: wall-clock read in a trainer path — timing jitter could steer
// a decision and break bit-identity across runs.

use std::time::Instant;

pub fn timed_choice() -> bool {
    let t0 = Instant::now();
    expensive();
    t0.elapsed().as_micros() % 2 == 0
}

fn expensive() {}
