//@ path: crates/cluster/src/collectives.rs
//@ expect: panic-call
// Known-bad: a panic in the comm layer strands every peer blocked on the
// rendezvous; faults must surface as typed CommError values.

pub fn broadcast_or_die(ok: bool) {
    if !ok {
        panic!("peer misbehaved");
    }
    let _ = todo!("unreachable either way");
}
