//@ path: crates/serve/src/stats.rs
// Clean: serve/stats.rs is the one serving-layer file allowlisted for
// wall-clock reads — latency accounting is its whole job.

use std::time::Instant;

pub fn elapsed_s(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}
