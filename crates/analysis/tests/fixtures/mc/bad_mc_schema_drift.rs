//@ path: crates/serve/src/wire.rs
//@ expect: schema-parity
//! Encode/decode drift: the encoder writes `count` as 4 little-endian
//! bytes, the decoder consumes 8. Every frame after the second field
//! decodes garbage.

pub struct DriftFrame {
    pub req_id: u64,
    pub count: u32,
}

impl DriftFrame {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Cursor { bytes, pos: 0 };
        let req_id = r.u64()?;
        let count = r.u64()? as u32;
        Ok(DriftFrame { req_id, count })
    }
}
