//@ path: crates/serve/src/replica.rs
//@ expect: mc-fault-closure
//! A replica that models crashes but recovers carelessly: it neither
//! purges frames buffered across the crash nor announces itself to the
//! router with a RECOVER frame. Stale pre-crash frames replay into the
//! recovered schedule and the router never resyncs the replica.

enum ReplicaState {
    Healthy,
    Crashed,
}

impl Replica {
    fn serve_tick(&mut self) -> Result<(), CommError> {
        let tags = [SERVE_ROUTE_TAG, SERVE_PUBLISH_TAG, SERVE_STOP_TAG];
        let frame = self.comm.recv_any(&tags)?;
        let _ = frame;
        Ok(())
    }
}
