//@ path: crates/quadrants/src/qd1.rs
//@ expect: mc-collective-divergence
//! A collective inside a rank-conditional branch: rank 0 enters the
//! all-reduce rendezvous, every other rank runs past it to the end of
//! the schedule. The rendezvous can never complete.

fn train(ctx: &mut WorkerCtx, buf: &mut [f64]) -> Result<(), CommError> {
    if ctx.comm.rank() == 0 {
        ctx.comm.all_reduce_f64(buf)?;
    }
    Ok(())
}
