//@ file: crates/serve/src/router.rs
//! A router/replica frame machine in full agreement: every tag either
//! side emits is in the other side's listen set. The serve-plane checks
//! must stay quiet.

impl Router {
    fn dispatch(&mut self, replica_rank: usize, req: Bytes) -> Result<(), CommError> {
        self.comm.send(replica_rank, SERVE_ROUTE_TAG, req)?;
        Ok(())
    }

    fn pump(&mut self) -> Result<(), CommError> {
        let tags = [SERVE_REPLY_TAG, SERVE_ACK_TAG];
        let frame = self.comm.recv_any(&tags)?;
        let _ = frame;
        Ok(())
    }
}

//@ file: crates/serve/src/replica.rs

impl Replica {
    fn serve_tick(&mut self) -> Result<(), CommError> {
        let tags = [SERVE_ROUTE_TAG, SERVE_PUBLISH_TAG, SERVE_STOP_TAG];
        let frame = self.comm.recv_any(&tags)?;
        let reply_to = frame.from;
        self.comm.send(reply_to, SERVE_REPLY_TAG, Bytes::new())?;
        Ok(())
    }
}
