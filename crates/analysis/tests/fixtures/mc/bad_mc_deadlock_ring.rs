//@ path: crates/cluster/src/collectives.rs
//@ expect: mc-deadlock
//! The classic reordered ring: every rank receives from its predecessor
//! *before* sending to its successor. With blocking receives, no rank
//! ever reaches its send — a cyclic wait at every world size > 0.

impl Comm {
    pub fn ring_shift(&self, payload: Bytes) -> Result<Bytes, CommError> {
        let tag = self.alloc_collective_tag();
        let next = (self.rank() + 1) % self.world();
        let prev = (self.rank() + self.world() - 1) % self.world();
        let got = self.recv(prev, tag)?;
        self.send(next, tag, payload)?;
        Ok(got)
    }
}
