//@ expect: mc-orphan-frame
//@ file: crates/serve/src/router.rs
//! Router that emits a frame tag its replicas never listen for: the
//! replica demux drops `SERVE_BOGUS_TAG` on the floor, so the route
//! request silently vanishes.

impl Router {
    fn dispatch(&mut self, replica_rank: usize, req: Bytes) -> Result<(), CommError> {
        self.comm.send(replica_rank, SERVE_BOGUS_TAG, req)?;
        Ok(())
    }
}

//@ file: crates/serve/src/replica.rs

impl Replica {
    fn serve_tick(&mut self) -> Result<(), CommError> {
        let tags = [SERVE_ROUTE_TAG, SERVE_PUBLISH_TAG, SERVE_STOP_TAG];
        let frame = self.comm.recv_any(&tags)?;
        let _ = frame;
        Ok(())
    }
}
