//@ expect: dead-tag
//@ file: crates/cluster/src/comm.rs
//! A registry with a tag no extracted schedule ever touches: dead
//! protocol surface that new code could collide with silently.

pub mod protocol {
    /// Exercised by the ring exchange below.
    pub const USED_TAG: u64 = 0x10;
    /// Registered, never sent, never received.
    pub const DEAD_TAG: u64 = 0x11;
}

//@ file: crates/cluster/src/collectives.rs

impl Comm {
    pub fn exchange(&self, payload: Bytes) -> Result<Bytes, CommError> {
        let next = (self.rank() + 1) % self.world();
        let prev = (self.rank() + self.world() - 1) % self.world();
        self.send(next, USED_TAG, payload)?;
        self.recv(prev, USED_TAG)
    }
}
