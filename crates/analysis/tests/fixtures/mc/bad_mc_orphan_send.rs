//@ path: crates/cluster/src/collectives.rs
//@ expect: mc-orphan-send
//! Rank 0 sends twice but rank 1 receives once: the second message sits
//! in the edge buffer forever. Progress is never blocked, so only the
//! orphan-send check catches the asymmetry.

impl Comm {
    pub fn lopsided(&self, payload: Bytes) -> Result<(), CommError> {
        let tag = self.alloc_collective_tag();
        if self.rank() == 0 {
            self.send(1, tag, payload.clone())?;
            self.send(1, tag, payload)?;
        } else if self.rank() == 1 {
            let _ = self.recv(0, tag)?;
        }
        Ok(())
    }
}
