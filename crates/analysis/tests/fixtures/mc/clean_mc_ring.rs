//@ path: crates/cluster/src/collectives.rs
//! A symmetric ring shift: every rank sends to its successor before
//! receiving from its predecessor. Sends are non-blocking, so this is
//! deadlock-free at every world size — the model checker must agree.

impl Comm {
    pub fn ring_shift(&self, payload: Bytes) -> Result<Bytes, CommError> {
        let tag = self.alloc_collective_tag();
        let next = (self.rank() + 1) % self.world();
        let prev = (self.rank() + self.world() - 1) % self.world();
        self.send(next, tag, payload)?;
        self.recv(prev, tag)
    }
}
