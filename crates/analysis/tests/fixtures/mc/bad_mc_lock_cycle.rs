//@ path: crates/serve/src/pool.rs
//@ expect: lock-order
//! Two call paths committing to opposite lock orders: `swap` takes the
//! model slot then the pool, `join` takes the pool then the slot. Under
//! concurrent traffic each can hold its first lock while blocking on
//! the other's — a classic AB/BA deadlock.

impl Pool {
    fn swap(&self) {
        let slot = self.slot.write().unwrap();
        let pool = self.pool.lock().unwrap();
        drop((slot, pool));
    }

    fn join(&self) {
        let pool = self.pool.lock().unwrap();
        let slot = self.slot.read().unwrap();
        drop((pool, slot));
    }
}
