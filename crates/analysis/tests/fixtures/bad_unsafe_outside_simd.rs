//@ path: crates/core/src/kernels.rs
//@ expect: unsafe-outside-simd
// Known-bad: an unchecked accumulate outside the audited SIMD module.
// The speedup is real but the audit boundary is the point — unsafe lives
// only in gbdt-core::kernels::simd, where the lane-group range proofs are.

pub fn add_pair_fast(data: &mut [f64], idx: usize, g: f64, h: f64) {
    unsafe {
        *data.get_unchecked_mut(idx) += g;
        *data.get_unchecked_mut(idx + 1) += h;
    }
}
