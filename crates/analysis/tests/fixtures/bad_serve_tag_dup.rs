//@ path: crates/cluster/src/comm.rs
//@ expect: tag-registry
// Known-bad: a new serving tag reusing an already-registered value inside
// the central registry. Uniqueness is the whole point of `mod protocol`;
// the checker must flag the collision even though both constants live in
// the right place.

pub mod protocol {
    /// Prediction request frames.
    pub const SERVE_REQUEST_TAG: u64 = 0x7376_7271;
    /// Duplicate value under a different name — collides with requests.
    pub const SERVE_SCORE_TAG: u64 = 0x7376_7271;
}
