//! Chaos acceptance for replicated serving (PR 8 tentpole).
//!
//! A 3-replica group behind the router must survive a seeded plan that
//! crashes one replica mid-run and drops/dups/delays exactly the
//! serve-tagged frames, while a full open-loop run of client traffic is
//! in flight. The hard criteria, from ISSUE 8:
//!
//! * **zero incorrect responses** — every non-shed scored response is
//!   bit-exact for its stamped `(version, trees_scored)`;
//! * **availability ≥ 99%** of non-shed requests;
//! * **failover is bounded** — every request resolves (served, shed, or
//!   typed-failed within the retry budget); none hang.

use gbdt_cluster::comm::protocol::{
    SERVE_HEALTH_PING_TAG, SERVE_HEALTH_PONG_TAG, SERVE_PUBLISH_TAG, SERVE_REPLY_TAG,
    SERVE_REQUEST_TAG, SERVE_RESPONSE_TAG, SERVE_ROUTE_TAG,
};
use gbdt_cluster::FaultPlan;
use gbdt_core::model::GbdtModel;
use gbdt_core::tree::Tree;
use gbdt_core::Objective;
use gbdt_serve::avail::{run_avail, AvailConfig, AvailOutcome};
use gbdt_serve::exec::{Layout, Strategy};

fn model(leaf_scale: f64, n_trees: usize, n_features: usize) -> GbdtModel {
    let mut m = GbdtModel::new(Objective::SquaredError, 0.1, n_features);
    for k in 0..n_trees {
        let mut t = Tree::new(3, 1);
        t.set_internal(0, (k % n_features) as u32, 0, 0.25, k % 2 == 0);
        t.set_internal(1, ((k + 1) % n_features) as u32, 0, -0.5, true);
        t.set_leaf(3, vec![leaf_scale * (k as f64 + 1.0) * 0.125]);
        t.set_leaf(4, vec![-leaf_scale * 0.0625]);
        t.set_leaf(2, vec![leaf_scale * 0.5 - k as f64 * 0.03125]);
        m.trees.push(t);
    }
    m
}

/// The serve-path tag scope: chaos confined to exactly the serving plane.
fn serve_tagged(plan: FaultPlan) -> FaultPlan {
    plan.with_tag(SERVE_REQUEST_TAG)
        .with_tag(SERVE_RESPONSE_TAG)
        .with_tag(SERVE_ROUTE_TAG)
        .with_tag(SERVE_REPLY_TAG)
        .with_tag(SERVE_PUBLISH_TAG)
        .with_tag(SERVE_HEALTH_PING_TAG)
        .with_tag(SERVE_HEALTH_PONG_TAG)
}

fn assert_acceptance(outcome: &AvailOutcome) {
    let run = &outcome.run;
    // Every request resolved one way or another — nothing hangs.
    assert_eq!(
        run.served + run.degraded + run.shed + run.failed + run.incorrect,
        run.requests,
        "unaccounted requests: {run:?}"
    );
    // Chaos may cost availability, never correctness.
    assert_eq!(run.incorrect, 0, "bit-inexact responses under chaos: {run:?}");
    assert!(
        run.availability >= 0.99,
        "availability {:.4} below the 99% floor: {run:?}",
        run.availability
    );
}

#[test]
fn three_replica_group_survives_crash_and_lossy_plan() {
    let plan = serve_tagged(
        FaultPlan::new(0x0C_8A05_0801)
            .with_drop(0.05)
            .with_dup(0.05)
            .with_delay(0.05, 0.0005)
            // Replica 1 dies just before handling its 30th frame.
            .with_crash(1, 30, 0),
    );
    let cfg = AvailConfig {
        label: "chaos".into(),
        n_replicas: 3,
        n_clients: 4,
        requests_per_client: 150,
        batch: 6,
        qps: 0.0,
        strategy: Strategy::PerRow,
        seed: 808,
        ..AvailConfig::default()
    };
    let outcome = run_avail(&[model(1.0, 12, 5)], &cfg, Some(plan)).unwrap();
    assert_acceptance(&outcome);
    // The crash actually fired and the replica rejoined the group.
    let crashes: u64 = outcome.replicas.iter().map(|r| r.crashes).sum();
    assert_eq!(crashes, 1, "expected exactly the planned crash: {:?}", outcome.replicas);
    assert!(
        outcome.router.recoveries >= 1,
        "router never saw the recovery: {:?}",
        outcome.router
    );
    // All three replicas did real work across the run.
    assert!(outcome.replicas.iter().all(|r| r.requests > 0), "{:?}", outcome.replicas);
}

/// The full chaos plan with the PR 9 scoring path engaged: quantized
/// nodes and a 4-way scoring pool inside every replica, batches wide
/// enough (3 chunks) that each request genuinely fans out. Crash,
/// loss, duplication, failover, recovery resync, and mid-run publishes
/// all land on replicas whose scoring is chunk-parallel — and the
/// ledger must still verify every response bit-exact for its stamped
/// `(version, trees_scored)`: no torn chunk, no version-mixed batch.
#[test]
fn parallel_quant_replicas_survive_the_chaos_plan() {
    let plan = serve_tagged(
        FaultPlan::new(0x0C_8A05_0901)
            .with_drop(0.04)
            .with_dup(0.04)
            .with_delay(0.04, 0.0005)
            .with_crash(2, 40, 0),
    );
    let cfg = AvailConfig {
        label: "chaos-parallel".into(),
        n_replicas: 3,
        n_clients: 3,
        requests_per_client: 60,
        batch: 192,
        qps: 0.0,
        strategy: Strategy::Blocked(0),
        layout: Layout::Quant,
        score_threads: 4,
        seed: 909,
        ..AvailConfig::default()
    };
    let models = [model(1.0, 12, 5), model(0.75, 12, 5)];
    let outcome = run_avail(&models, &cfg, Some(plan)).unwrap();
    assert_acceptance(&outcome);
    let crashes: u64 = outcome.replicas.iter().map(|r| r.crashes).sum();
    assert_eq!(crashes, 1, "expected exactly the planned crash: {:?}", outcome.replicas);
    // The mid-run publish landed and both whole versions were served.
    assert_eq!(outcome.router.publishes, 1, "{:?}", outcome.router);
    assert_eq!(outcome.run.versions_seen, vec![1, 2], "{:?}", outcome.run);
}

#[test]
fn hedges_and_duplicates_never_double_count() {
    // Dup-heavy plan on the reply path: the router must suppress every
    // duplicate by router-assigned request id, so served ≤ requests even
    // though the fabric delivers many reply copies.
    let plan = serve_tagged(FaultPlan::new(77).with_dup(0.35));
    let cfg = AvailConfig {
        label: "dup-storm".into(),
        n_replicas: 3,
        n_clients: 3,
        requests_per_client: 120,
        batch: 4,
        qps: 0.0,
        strategy: Strategy::Blocked(0),
        seed: 31,
        ..AvailConfig::default()
    };
    let outcome = run_avail(&[model(0.5, 8, 4)], &cfg, Some(plan)).unwrap();
    assert_acceptance(&outcome);
    assert!(
        outcome.run.served + outcome.run.degraded <= outcome.run.requests,
        "double-counted responses: {:?}",
        outcome.run
    );
}

#[test]
fn shedding_is_typed_and_bounded_under_overload() {
    // One replica with a one-deep queue against six closed-loop clients:
    // the router must shed with a typed response (not buffer unboundedly),
    // degrade what it can, and keep every answered score bit-exact.
    let mut cfg = AvailConfig {
        label: "overload".into(),
        n_replicas: 1,
        n_clients: 6,
        requests_per_client: 60,
        batch: 4,
        qps: 0.0,
        strategy: Strategy::PerRow,
        seed: 99,
        ..AvailConfig::default()
    };
    cfg.router.queue_cap = 2;
    cfg.router.high_water = 1;
    cfg.router.degrade_trees = 3;
    let outcome = run_avail(&[model(0.25, 16, 4)], &cfg, None).unwrap();
    let run = &outcome.run;
    assert_eq!(run.incorrect, 0, "{run:?}");
    assert_eq!(
        run.served + run.degraded + run.shed + run.failed,
        run.requests,
        "{run:?}"
    );
    // Of what was admitted (non-shed), ~everything must be answered.
    assert!(run.availability >= 0.99, "availability {:.4}: {run:?}", run.availability);
}
