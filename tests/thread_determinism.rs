//! Thread-count determinism guard: intra-worker parallelism must never
//! change the trained ensemble, only the wall-clock.
//!
//! The parallel layer (DESIGN.md §4.4) fixes chunk boundaries by instance
//! count — never by thread count — and merges partials in ascending chunk
//! order, so f64 accumulation order is identical for every thread budget.
//! These tests pin that: every trainer grows a bit-identical model at
//! threads = 1 and threads = 4, and the distributed ones move exactly the
//! same bytes. Shapes deliberately exceed the 4096-instance chunk size and
//! the 64-feature parallel split-finding gate so the multi-threaded code
//! paths actually execute.

use gbdt_cluster::Cluster;
use gbdt_core::{GbdtModel, Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation};

/// Larger than one 4096-instance chunk so histogram builds split into
/// multiple chunks, and wider than the 64-feature gate so split finding
/// fans out.
fn dataset(classes: usize, seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: 6_000,
        n_features: 70,
        n_classes: classes,
        density: 0.3,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

fn config(classes: usize, threads: usize) -> TrainConfig {
    let objective =
        if classes > 2 { Objective::Softmax { n_classes: classes } } else { Objective::Logistic };
    TrainConfig::builder()
        .n_trees(2)
        .n_layers(4)
        .objective(objective)
        .threads(threads)
        .build()
        .unwrap()
}

fn assert_bit_identical(a: &GbdtModel, b: &GbdtModel, tag: &str) {
    assert_eq!(a, b, "{tag}: ensemble differs between thread counts");
}

#[test]
fn single_node_is_thread_count_invariant() {
    let ds = dataset(2, 2001);
    let m1 = single::train(&ds, &config(2, 1));
    let m4 = single::train(&ds, &config(2, 4));
    assert_bit_identical(&m1, &m4, "single");
}

#[test]
fn distributed_trainers_are_thread_count_invariant() {
    let ds = dataset(2, 2003);
    let cluster = Cluster::new(3);
    type Train = fn(&Cluster, &Dataset, &TrainConfig) -> gbdt_quadrants::DistTrainResult;
    let trainers: [(&str, Train); 6] = [
        ("qd1", |c, d, cfg| qd1::train(c, d, cfg)),
        ("qd2", |c, d, cfg| qd2::train(c, d, cfg, Aggregation::AllReduce)),
        ("qd3", |c, d, cfg| qd3::train(c, d, cfg)),
        ("qd4", |c, d, cfg| qd4::train(c, d, cfg)),
        ("yggdrasil", |c, d, cfg| yggdrasil::train(c, d, cfg)),
        ("featpar", |c, d, cfg| featpar::train(c, d, cfg)),
    ];
    for (tag, train) in trainers {
        let r1 = train(&cluster, &ds, &config(2, 1));
        let r4 = train(&cluster, &ds, &config(2, 4));
        assert_bit_identical(&r1.model, &r4.model, tag);
        assert_eq!(
            r1.stats.total_bytes_sent(),
            r4.stats.total_bytes_sent(),
            "{tag}: collective byte counts differ between thread counts"
        );
    }
}

#[test]
fn uneven_thread_counts_agree_too() {
    // 3 threads over 6000/4096 -> 2 chunks exercises the t > n_chunks clamp
    // and uneven feature-block division in the column-store builders.
    let ds = dataset(2, 2011);
    let cluster = Cluster::new(2);
    let m1 = qd4::train(&cluster, &ds, &config(2, 1)).model;
    let m3 = qd4::train(&cluster, &ds, &config(2, 3)).model;
    let m8 = qd4::train(&cluster, &ds, &config(2, 8)).model;
    assert_bit_identical(&m1, &m3, "qd4 t=3");
    assert_bit_identical(&m1, &m8, "qd4 t=8");
}

#[test]
fn multiclass_is_thread_count_invariant() {
    // C > 2 widens the per-feature histogram stride (C gradient pairs per
    // bin) — the bulk-copy and block-partition arithmetic must still land
    // every pair in the same slot.
    let ds = dataset(4, 2017);
    let cluster = Cluster::new(2);
    for (tag, train) in [
        ("qd2", qd2_ps as fn(&Cluster, &Dataset, &TrainConfig) -> gbdt_quadrants::DistTrainResult),
        ("qd4", |c: &Cluster, d: &Dataset, cfg: &TrainConfig| qd4::train(c, d, cfg)),
    ] {
        let r1 = train(&cluster, &ds, &config(4, 1));
        let r4 = train(&cluster, &ds, &config(4, 4));
        assert_bit_identical(&r1.model, &r4.model, tag);
    }
}

fn qd2_ps(c: &Cluster, d: &Dataset, cfg: &TrainConfig) -> gbdt_quadrants::DistTrainResult {
    qd2::train(c, d, cfg, Aggregation::ParameterServer)
}

#[test]
fn parallel_meter_reports_plausible_speedup() {
    // Not a perf assertion (CI machines vary) — just that the meter wiring
    // produced sane numbers: busy time accrues and speedup is within the
    // physically possible [~1, threads] band. Each of the 2 workers needs
    // > 4096 local instances or every build takes the unmetered direct path.
    let ds = SyntheticConfig {
        n_instances: 10_000,
        n_features: 70,
        n_classes: 2,
        density: 0.3,
        label_noise: 0.02,
        seed: 2027,
        ..Default::default()
    }
    .generate();
    let cluster = Cluster::new(2);
    let r = qd2::train(&cluster, &ds, &config(2, 4), Aggregation::AllReduce);
    let speedup = r.stats.parallel_speedup();
    assert!(speedup > 0.0, "speedup should be positive, got {speedup}");
    assert!(speedup <= 4.0 + 1e-9, "speedup cannot exceed thread count, got {speedup}");
    for w in &r.stats.workers {
        assert_eq!(w.threads, 4);
        assert!(w.parallel_wall_seconds > 0.0, "wall time should accrue");
        assert!(w.parallel_busy_seconds > 0.0, "busy time should accrue");
    }
}
