//! Wire-codec determinism and compression guarantees (DESIGN.md §4.7).
//!
//! The lossless codecs (`dense`, `sparse`, `auto`) re-encode the exact f64
//! payload, and the decode-merge runs in the same rank/segment order as the
//! dense path, so the trained ensemble must be bit-identical under every
//! lossless codec and every thread count. On sparse data the adaptive codec
//! must also cut histogram-aggregation wire bytes at least 2x — that is the
//! whole point of the layer.

use gbdt_cluster::Cluster;
use gbdt_core::{GbdtModel, Objective, TrainConfig, WireCodec};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{qd1, qd2, qd4, Aggregation};

fn config(classes: usize, threads: usize, wire: WireCodec) -> TrainConfig {
    let objective =
        if classes > 2 { Objective::Softmax { n_classes: classes } } else { Objective::Logistic };
    TrainConfig::builder()
        .n_trees(2)
        .n_layers(5)
        .objective(objective)
        .threads(threads)
        .wire(wire)
        .build()
        .unwrap()
}

/// Wide and sparse: instances-per-node shrink 2^layer, so below the root
/// most feature bins are empty and the sparse layout wins decisively.
fn sparse_dataset(seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: 1_500,
        n_features: 300,
        n_classes: 2,
        density: 0.05,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

#[test]
fn lossless_codecs_are_bit_identical_across_threads() {
    let ds = sparse_dataset(4001);
    let cluster = Cluster::new(3);
    let reference = qd1::train(&cluster, &ds, &config(2, 1, WireCodec::Dense)).model;
    for codec in [WireCodec::Dense, WireCodec::Sparse, WireCodec::Auto] {
        for threads in [1, 4] {
            let cfg = config(2, threads, codec);
            let q1 = qd1::train(&cluster, &ds, &cfg).model;
            let q2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
            assert_eq!(reference, q1, "qd1 wire={codec} threads={threads}");
            assert_eq!(reference, q2, "qd2 wire={codec} threads={threads}");
        }
    }
}

#[test]
fn auto_codec_compresses_sparse_aggregation_at_least_2x() {
    let ds = sparse_dataset(4003);
    let cluster = Cluster::new(2);
    let dense = qd2::train(&cluster, &ds, &config(2, 1, WireCodec::Dense), Aggregation::AllReduce);
    let auto = qd2::train(&cluster, &ds, &config(2, 1, WireCodec::Auto), Aggregation::AllReduce);

    // Same logical traffic, bit-identical ensemble.
    assert_eq!(dense.model, auto.model, "auto must stay lossless");
    assert_eq!(
        dense.stats.total_logical_f64_bytes(),
        auto.stats.total_logical_f64_bytes(),
        "codec must not change what is logically aggregated"
    );
    // Dense ships every f64 as-is.
    assert_eq!(dense.stats.total_logical_f64_bytes(), dense.stats.total_wire_f64_bytes());

    // The acceptance bar: >= 2x fewer wire bytes on nnz <= 10% data.
    let ratio = dense.stats.total_wire_f64_bytes() as f64 / auto.stats.total_wire_f64_bytes() as f64;
    assert!(
        ratio >= 2.0,
        "auto codec only compressed {ratio:.2}x ({} -> {} bytes)",
        dense.stats.total_wire_f64_bytes(),
        auto.stats.total_wire_f64_bytes()
    );
    assert!(auto.stats.wire_compression() >= 2.0);

    // Per-layer accounting: deeper layers are sparser, so compression at the
    // deepest recorded layer must beat the root layer.
    let layers = auto.stats.layer_wire_bytes();
    assert!(layers.len() >= 2, "expected per-layer byte records, got {layers:?}");
    let ratio_of = |(logical, wire): (u64, u64)| logical as f64 / wire.max(1) as f64;
    assert!(
        ratio_of(layers[layers.len() - 1]) > ratio_of(layers[0]),
        "deep layers should compress better than the root: {layers:?}"
    );
    // Layer records cover only histogram traffic, never more than the total.
    let layer_logical: u64 = layers.iter().map(|&(l, _)| l).sum();
    assert!(layer_logical <= auto.stats.total_logical_f64_bytes());
}

#[test]
fn f32_codec_is_rank_consistent_and_cheaper() {
    // Lossy mode: no bit-identity promise vs dense, but the run must be
    // deterministic and strictly cheaper on the wire.
    let ds = sparse_dataset(4007);
    let cluster = Cluster::new(3);
    let cfg = config(2, 1, WireCodec::F32);
    let a = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce);
    let b = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce);
    assert_eq!(a.model, b.model, "f32 codec must still be run-to-run deterministic");

    let dense = qd2::train(&cluster, &ds, &config(2, 1, WireCodec::Dense), Aggregation::AllReduce);
    assert!(
        a.stats.total_wire_f64_bytes() < dense.stats.total_wire_f64_bytes() / 2,
        "f32 + sparsity should beat half of dense: {} vs {}",
        a.stats.total_wire_f64_bytes(),
        dense.stats.total_wire_f64_bytes()
    );
}

#[test]
fn vertical_trainers_are_codec_invariant() {
    // QD3/QD4/Yggdrasil/featpar exchange split choices and instance
    // bitsets, never histograms — there is nothing for the codec to encode,
    // so even the lossy f32 mode trains the identical ensemble.
    let ds = sparse_dataset(4013);
    let cluster = Cluster::new(2);
    let mut models: Vec<(WireCodec, GbdtModel)> = Vec::new();
    for codec in WireCodec::ALL {
        let r = qd4::train(&cluster, &ds, &config(2, 1, codec));
        assert_eq!(r.stats.total_wire_f64_bytes(), 0, "qd4 has no histogram wire traffic");
        models.push((codec, r.model));
    }
    for (codec, model) in &models[1..] {
        assert_eq!(&models[0].1, model, "qd4 wire={codec} diverged");
    }
}
