//! Property-based tests across the full pipeline: for arbitrary small
//! datasets and cluster shapes, the vertical transformation is lossless and
//! horizontal/vertical training agree.

use gbdt_cluster::Cluster;
use gbdt_core::TrainConfig;
use gbdt_data::sparse::CsrBuilder;
use gbdt_data::{Dataset, FeatureMatrix};
use gbdt_partition::transform::{horizontal_to_vertical, TransformConfig};
use gbdt_partition::HorizontalPartition;
use gbdt_quadrants::common::shard_dataset;
use gbdt_quadrants::{qd2, qd4, Aggregation};
use proptest::prelude::*;

/// Arbitrary small labeled sparse dataset.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let d = 8usize;
    (
        prop::collection::vec(
            (
                prop::collection::btree_map(0..d as u32, -10.0f32..10.0, 1..6),
                0u8..2,
            ),
            20..80,
        ),
        any::<u64>(),
    )
        .prop_map(move |(rows, _seed)| {
            let mut b = CsrBuilder::new(d);
            let mut labels = Vec::new();
            for (row, y) in &rows {
                let entries: Vec<(u32, f32)> = row.iter().map(|(&f, &v)| (f, v)).collect();
                b.push_row(&entries).unwrap();
                labels.push(f32::from(*y));
            }
            Dataset::new(FeatureMatrix::Sparse(b.build()), labels, 2, "prop").unwrap()
        })
        .prop_filter("need both classes", |ds| {
            ds.labels.contains(&0.0) && ds.labels.contains(&1.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transform_is_lossless_for_any_dataset(ds in arb_dataset(), workers in 1usize..4) {
        let partition = HorizontalPartition::new(ds.n_instances(), workers);
        let tcfg = TransformConfig::default();
        let cluster = Cluster::new(workers);
        let ds_ref = &ds;
        let tcfg_ref = &tcfg;
        let (outputs, _) = cluster.run(move |ctx| {
            let shard = shard_dataset(ds_ref, partition, ctx.rank());
            horizontal_to_vertical(ctx, &shard, partition, tcfg_ref).unwrap()
        });
        // Reference binning with the distributed cuts.
        let reference = outputs[0].cuts.apply(&ds);
        let grouping = &outputs[0].grouping;
        for (w, out) in outputs.iter().enumerate() {
            prop_assert_eq!(out.labels.as_slice(), ds.labels.as_slice());
            let local = out.local_data.to_binned_rows();
            for i in 0..ds.n_instances() {
                for (local_id, &global) in grouping.group_features(w).iter().enumerate() {
                    prop_assert_eq!(
                        local.get(i, local_id as u32),
                        reference.get(i, global),
                        "worker {} row {} feature {}", w, i, global
                    );
                }
            }
        }
    }

    #[test]
    fn horizontal_and_vertical_agree_on_any_dataset(ds in arb_dataset(), workers in 1usize..4) {
        let cfg = TrainConfig::builder().n_trees(2).n_layers(4).build().unwrap();
        let cluster = Cluster::new(workers);
        let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
        let m4 = qd4::train(&cluster, &ds, &cfg).model;
        let p2 = m2.predict_dataset_raw(&ds);
        let p4 = m4.predict_dataset_raw(&ds);
        for (a, b) in p2.iter().zip(&p4) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }
}
