//! Chaos suite: the headline fault-tolerance guarantee.
//!
//! Under a seeded fault plan injecting message drops, duplicates, delays,
//! and a mid-tree worker crash, every trainer must produce an ensemble
//! **bit-identical** to its fault-free run — drops are retried, duplicates
//! discarded, delays only charge modelled time, and the crashed attempt
//! replays deterministically from the per-tree checkpoint. The stats must
//! show the recovery actually happened (nonzero retries / recoveries), and
//! fault-free byte accounting must stay deterministic.

use gbdt_cluster::{Cluster, FaultPlan};
use gbdt_core::{GbdtModel, Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation, DistTrainResult};

fn dataset(seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: 700,
        n_features: 14,
        n_classes: 2,
        density: 0.5,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

fn config() -> TrainConfig {
    TrainConfig::builder()
        .n_trees(3)
        .n_layers(4)
        .objective(Objective::Logistic)
        .build()
        .unwrap()
}

/// The seeded chaos plan: 4% drops, 4% duplicates, 5% delays, and rank 1
/// crashing mid-tree (tree 1, layer 1).
fn chaos_plan() -> FaultPlan {
    FaultPlan::parse("4242:drop=0.04,dup=0.04,delay=0.05@0.0005,crash=1@1.1")
        .expect("valid chaos spec")
}

/// Runs a trainer clean and under chaos, asserting bit-identical ensembles
/// and that the faults demonstrably fired and were absorbed.
fn assert_recovers(name: &str, train: impl Fn(&Cluster) -> DistTrainResult) {
    let workers = 3;
    let clean = train(&Cluster::new(workers));
    assert_eq!(clean.stats.recoveries, 0, "{name}: clean run recovered");
    assert_eq!(clean.stats.total_retries(), 0, "{name}: clean run retried");

    let faulted = train(&Cluster::new(workers).with_faults(Some(chaos_plan())));
    assert_eq!(
        clean.model, faulted.model,
        "{name}: chaos run must recover the bit-identical ensemble"
    );
    assert_eq!(faulted.stats.recoveries, 1, "{name}: the scheduled crash fires once");
    assert!(faulted.stats.recovery_seconds > 0.0, "{name}: replay time is accounted");
    assert!(faulted.stats.total_retries() > 0, "{name}: drops were retried");
    assert!(
        faulted.stats.total_duplicates_dropped() > 0,
        "{name}: duplicates were detected"
    );
    assert!(
        faulted.stats.total_bytes_sent() > clean.stats.total_bytes_sent(),
        "{name}: retries and duplicates cost real bytes"
    );
}

#[test]
fn qd1_recovers_bit_identically() {
    let ds = dataset(31);
    let cfg = config();
    assert_recovers("qd1", |c| qd1::train(c, &ds, &cfg));
}

#[test]
fn qd2_all_reduce_recovers_bit_identically() {
    let ds = dataset(32);
    let cfg = config();
    assert_recovers("qd2-allreduce", |c| qd2::train(c, &ds, &cfg, Aggregation::AllReduce));
}

#[test]
fn qd2_reduce_scatter_and_ps_recover_bit_identically() {
    let ds = dataset(33);
    let cfg = config();
    assert_recovers("qd2-reducescatter", |c| {
        qd2::train(c, &ds, &cfg, Aggregation::ReduceScatter)
    });
    assert_recovers("qd2-ps", |c| qd2::train(c, &ds, &cfg, Aggregation::ParameterServer));
}

#[test]
fn qd3_recovers_bit_identically() {
    let ds = dataset(34);
    let cfg = config();
    assert_recovers("qd3", |c| qd3::train(c, &ds, &cfg));
}

#[test]
fn qd4_recovers_bit_identically() {
    let ds = dataset(35);
    let cfg = config();
    assert_recovers("qd4", |c| qd4::train(c, &ds, &cfg));
}

#[test]
fn yggdrasil_recovers_bit_identically() {
    let ds = dataset(36);
    let cfg = config();
    assert_recovers("yggdrasil", |c| yggdrasil::train(c, &ds, &cfg));
}

#[test]
fn featpar_recovers_bit_identically() {
    let ds = dataset(37);
    let cfg = config();
    assert_recovers("featpar", |c| featpar::train(c, &ds, &cfg));
}

/// A one-worker cluster has no network faults to inject, but a scheduled
/// crash still kills and replays the worker — and the recovered ensemble
/// must match both the fault-free distributed run and the plain
/// single-machine trainer.
#[test]
fn single_worker_crash_recovers_bit_identically() {
    let ds = dataset(38);
    let cfg = config();
    let clean = qd2::train(&Cluster::new(1), &ds, &cfg, Aggregation::AllReduce);

    let plan = FaultPlan::parse("7:crash=0@1.1").unwrap();
    let faulted = qd2::train(
        &Cluster::new(1).with_faults(Some(plan)),
        &ds,
        &cfg,
        Aggregation::AllReduce,
    );
    assert_eq!(clean.model, faulted.model, "single-worker crash must replay identically");
    assert_eq!(faulted.stats.recoveries, 1);

    // The distributed result agrees with the single-machine trainer.
    let reference: GbdtModel = single::train(&ds, &cfg);
    let pa = clean.model.predict_dataset_raw(&ds);
    let pb = reference.predict_dataset_raw(&ds);
    for (x, y) in pa.iter().zip(&pb) {
        assert!((x - y).abs() < 1e-6, "cluster vs single diverged: {x} vs {y}");
    }
}

/// Vero's public config carries the same knob end-to-end.
#[test]
fn vero_recovers_bit_identically() {
    let ds = dataset(39);
    let base = vero::VeroConfig::builder().workers(3).n_trees(3).n_layers(4);
    let clean = vero::Vero::fit(&base.clone().build().unwrap(), &ds);
    let faulted = vero::Vero::fit(&base.faults(chaos_plan()).build().unwrap(), &ds);
    assert_eq!(clean.model, faulted.model, "Vero chaos run must recover identically");
    assert_eq!(faulted.stats.recoveries, 1);
    assert!(faulted.stats.total_retries() > 0);
    assert_eq!(clean.stats.recoveries, 0);
}

/// With faults disabled the comm fast path must stay byte-for-byte
/// deterministic — the accounting regression guard for the fault layer.
#[test]
fn fault_free_byte_accounting_is_deterministic() {
    let ds = dataset(40);
    let cfg = config();
    let a = qd2::train(&Cluster::new(3), &ds, &cfg, Aggregation::AllReduce);
    let b = qd2::train(
        &Cluster::new(3).with_faults(None),
        &ds,
        &cfg,
        Aggregation::AllReduce,
    );
    assert_eq!(a.stats.total_bytes_sent(), b.stats.total_bytes_sent());
    assert_eq!(a.stats.total_logical_f64_bytes(), b.stats.total_logical_f64_bytes());
    assert_eq!(a.stats.total_wire_f64_bytes(), b.stats.total_wire_f64_bytes());
    assert_eq!(a.stats.total_retries(), 0);
    assert_eq!(b.stats.total_retries(), 0);
    assert_eq!(a.model, b.model);
}
