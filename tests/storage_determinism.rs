//! Storage-layout determinism guard: the binned storage layout must never
//! change the trained ensemble, only speed and memory.
//!
//! The dense kernels (DESIGN.md §9) visit values in ascending feature
//! order skipping the missing sentinel — exactly the sparse pair order —
//! and the dense column scans visit instances ascending, so f64
//! accumulation order is identical on either layout. These tests pin that
//! end to end: every trainer (all four quadrants, Yggdrasil, the
//! feature-parallel replica, the single-node reference, and Vero) grows a
//! bit-identical model under `--storage sparse`, `dense`, and `auto`, and
//! a `u8`-packed store trains the same ensemble as a `u16`-packed one.
//! Density 0.3 sits above the 0.25 auto threshold, so `auto` genuinely
//! takes the dense path here.

use gbdt_cluster::Cluster;
use gbdt_core::binning::BinCuts;
use gbdt_core::{GbdtModel, Objective, Storage, TrainConfig};
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::{BinnedStore, Dataset};
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation};
use vero::{Vero, VeroConfig};

fn dataset(classes: usize, seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: 6_000,
        n_features: 70,
        n_classes: classes,
        density: 0.3,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

fn config(classes: usize, storage: Storage) -> TrainConfig {
    let objective =
        if classes > 2 { Objective::Softmax { n_classes: classes } } else { Objective::Logistic };
    TrainConfig::builder()
        .n_trees(2)
        .n_layers(4)
        .objective(objective)
        .storage(storage)
        .build()
        .unwrap()
}

fn assert_bit_identical(a: &GbdtModel, b: &GbdtModel, tag: &str) {
    assert_eq!(a, b, "{tag}: ensemble differs between storage layouts");
}

#[test]
fn single_node_is_storage_invariant() {
    let ds = dataset(2, 3001);
    let reference = single::train(&ds, &config(2, Storage::Sparse));
    for storage in [Storage::Dense, Storage::Auto] {
        let m = single::train(&ds, &config(2, storage));
        assert_bit_identical(&reference, &m, &format!("single/{}", storage.label()));
    }
}

#[test]
fn distributed_trainers_are_storage_invariant() {
    let ds = dataset(2, 3003);
    let cluster = Cluster::new(3);
    type Train = fn(&Cluster, &Dataset, &TrainConfig) -> gbdt_quadrants::DistTrainResult;
    let trainers: [(&str, Train); 6] = [
        ("qd1", |c, d, cfg| qd1::train(c, d, cfg)),
        ("qd2", |c, d, cfg| qd2::train(c, d, cfg, Aggregation::AllReduce)),
        ("qd3", |c, d, cfg| qd3::train(c, d, cfg)),
        ("qd4", |c, d, cfg| qd4::train(c, d, cfg)),
        ("yggdrasil", |c, d, cfg| yggdrasil::train(c, d, cfg)),
        ("featpar", |c, d, cfg| featpar::train(c, d, cfg)),
    ];
    for (tag, train) in trainers {
        let reference = train(&cluster, &ds, &config(2, Storage::Sparse));
        for storage in [Storage::Dense, Storage::Auto] {
            let r = train(&cluster, &ds, &config(2, storage));
            assert_bit_identical(
                &reference.model,
                &r.model,
                &format!("{tag}/{}", storage.label()),
            );
            assert_eq!(
                reference.stats.total_bytes_sent(),
                r.stats.total_bytes_sent(),
                "{tag}/{}: collective byte counts differ between layouts",
                storage.label()
            );
        }
    }
}

#[test]
fn vero_is_storage_invariant() {
    let ds = dataset(2, 3007);
    let run = |storage: Storage| {
        let cfg = VeroConfig::builder()
            .workers(3)
            .n_trees(2)
            .n_layers(4)
            .storage(storage)
            .build()
            .unwrap();
        Vero::fit(&cfg, &ds).model
    };
    let reference = run(Storage::Sparse);
    assert_eq!(reference, run(Storage::Dense), "vero: dense differs from sparse");
    assert_eq!(reference, run(Storage::Auto), "vero: auto differs from sparse");
}

#[test]
fn multiclass_is_storage_invariant() {
    // C > 2 exercises the multiclass dense kernel (per-cell class loop)
    // against sparse add_instance.
    let ds = dataset(4, 3011);
    let cluster = Cluster::new(2);
    let reference = qd4::train(&cluster, &ds, &config(4, Storage::Sparse));
    let dense = qd4::train(&cluster, &ds, &config(4, Storage::Dense));
    assert_bit_identical(&reference.model, &dense.model, "qd4 multiclass");
}

#[test]
fn u8_and_u16_cells_train_identically() {
    // q = 20 fits u8, but a u16 packing of the same bins must accumulate
    // the same f64 stream — widths only change bytes, never bits.
    let ds = dataset(2, 3013);
    let cfg = config(2, Storage::Dense);
    let cuts = BinCuts::from_dataset(&ds, cfg.n_bins);
    let rows = cuts.apply(&ds);
    let models: Vec<GbdtModel> = [BinWidth::U8, BinWidth::U16]
        .into_iter()
        .map(|w| {
            let store = BinnedStore::Dense(DenseBinnedRows::from_sparse_with_width(
                &rows,
                cuts.max_bins(),
                w,
            ));
            assert!(store.is_dense());
            single::train_prebinned(&store, &cuts, &ds.labels, &cfg)
        })
        .collect();
    assert_bit_identical(&models[0], &models[1], "u8 vs u16");
}
