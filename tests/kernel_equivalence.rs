//! Property test: every histogram fill kernel produces byte-identical
//! `NodeHistogram`s — sparse pair walk, dense scalar scan, and dense SIMD
//! lane-group scan, over both cell widths (`u8`/`u16`), single-output and
//! multiclass gradients, arbitrary missing densities, and row chunks whose
//! lengths are not multiples of the lane width. Bit-identity here is what
//! lets `--storage` and `--kernel` stay pure perf knobs: the ensembles an
//! experiment trains cannot depend on them.

use gbdt_core::histogram::NodeHistogram;
use gbdt_core::kernels::{fill_dense_rows, fill_sparse_rows};
use gbdt_core::{GradBuffer, Kernel};
use gbdt_data::binned::BinnedRowsBuilder;
use gbdt_data::dense_binned::{BinWidth, DenseBinnedRows};
use gbdt_data::BinnedRows;
use proptest::prelude::*;

/// Arbitrary binned rows: up to 41 rows (not a multiple of either lane
/// width) over `d` features with per-cell presence drawn independently, so
/// densities range from fully missing to fully dense.
fn arb_binned(d: usize, q: u16) -> impl Strategy<Value = BinnedRows> {
    prop::collection::vec(prop::collection::vec(prop::option::of(0..q), d), 1..41)
    .prop_map(move |rows| {
        let mut b = BinnedRowsBuilder::new(d);
        for row in &rows {
            let entries: Vec<(u32, u16)> = row
                .iter()
                .enumerate()
                .filter_map(|(j, bin)| bin.map(|v| (j as u32, v)))
                .collect();
            b.push_row(&entries).unwrap();
        }
        b.build()
    })
}

fn grads(n: usize, c: usize) -> GradBuffer {
    let mut g = GradBuffer::new(n, c);
    for i in 0..n {
        for k in 0..c {
            g.set(i, k, (i as f64 + 1.0) * 0.731 - k as f64 * 0.17, (i as f64) * 0.413 + 1.0);
        }
    }
    g
}

/// Fills one histogram per kernel/layout and asserts exact byte equality.
fn assert_all_kernels_agree(rows: &BinnedRows, q: usize, c: usize, chunk: &[u32]) {
    let d = rows.n_features();
    let g = grads(rows.n_rows(), c);
    let mut reference = NodeHistogram::new(d, q, c);
    fill_sparse_rows(&mut reference, chunk, rows, &g);
    let ref_bytes: Vec<u8> =
        reference.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
    for width in [BinWidth::U8, BinWidth::U16] {
        let dense = DenseBinnedRows::from_sparse_with_width(rows, q, width);
        for kernel in Kernel::ALL {
            let mut hist = NodeHistogram::new(d, q, c);
            fill_dense_rows(&mut hist, chunk, &dense, &g, kernel);
            let bytes: Vec<u8> =
                hist.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
            assert_eq!(
                bytes,
                ref_bytes,
                "dense {width:?}/{} disagrees with sparse (d={d}, c={c}, q={q})",
                kernel.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// d = 19: not a multiple of 16 (u8 lanes) or 8 (u16 lanes), so every
    /// row exercises both the lane-group loop and the scalar remainder.
    #[test]
    fn kernels_agree_single_output(rows in arb_binned(19, 13)) {
        let chunk: Vec<u32> = (0..rows.n_rows() as u32).collect();
        assert_all_kernels_agree(&rows, 13, 1, &chunk);
    }

    #[test]
    fn kernels_agree_multiclass(rows in arb_binned(11, 7)) {
        let chunk: Vec<u32> = (0..rows.n_rows() as u32).collect();
        assert_all_kernels_agree(&rows, 7, 5, &chunk);
    }

    /// Partial chunks (a node's instance subset) hit the same kernels with
    /// non-contiguous row ids.
    #[test]
    fn kernels_agree_on_row_subsets(rows in arb_binned(19, 13), stride in 2usize..5) {
        // Row 0 is always included, so the chunk is never empty.
        let chunk: Vec<u32> = (0..rows.n_rows() as u32).step_by(stride).collect();
        assert_all_kernels_agree(&rows, 13, 1, &chunk);
    }
}

/// Lane-exact row widths (no scalar remainder) and widths below one lane
/// (no group loop) — the two structural extremes the proptest's fixed
/// d = 19 cannot reach.
#[test]
fn kernels_agree_at_lane_boundaries() {
    for d in [1, 7, 8, 15, 16, 32] {
        let mut b = BinnedRowsBuilder::new(d);
        for i in 0..25usize {
            let entries: Vec<(u32, u16)> = (0..d)
                .filter(|j| (i + j) % 4 != 0)
                .map(|j| (j as u32, ((i * 5 + j * 3) % 9) as u16))
                .collect();
            b.push_row(&entries).unwrap();
        }
        let rows = b.build();
        let chunk: Vec<u32> = (0..rows.n_rows() as u32).collect();
        for c in [1, 5] {
            assert_all_kernels_agree(&rows, 9, c, &chunk);
        }
    }
}
