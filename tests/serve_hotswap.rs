//! Hot-swap safety under concurrent traffic.
//!
//! Publishing a new model while requests are in flight must be atomic at
//! the *version* granularity: every response is scored entirely by one
//! published version — never a mix — and no request is ever dropped on
//! the floor during a swap. Two layers pin this:
//!
//! 1. An end-to-end traffic run ([`gbdt_serve::traffic::run_traffic`])
//!    with trained models: open-loop clients verify every response
//!    bit-for-bit against the expectation for the version stamped on it,
//!    so a torn swap (half-old, half-new scores) fails the bit match.
//! 2. A direct [`ModelSlot`] hammer: reader threads score snapshots while
//!    the main thread publishes repeatedly; every observed score must
//!    equal exactly one version's expected output.

use gbdt_cluster::comm::protocol::{SERVE_PUBLISH_TAG, SERVE_ROUTE_TAG};
use gbdt_cluster::{Cluster, FaultPlan};
use gbdt_core::model::GbdtModel;
use gbdt_core::TrainConfig;
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{qd2, Aggregation};
use gbdt_serve::avail::{run_avail, AvailConfig};
use gbdt_serve::exec::{Layout, PerRow, Strategy};
use gbdt_serve::server::ModelSlot;
use gbdt_serve::traffic::{run_traffic, TrafficConfig};
use gbdt_serve::ExecStrategy;

fn dataset(seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: 400,
        n_features: 10,
        n_classes: 2,
        density: 0.6,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

fn trained(seed: u64, n_trees: usize) -> GbdtModel {
    let cfg = TrainConfig::builder().n_trees(n_trees).n_layers(4).build().unwrap();
    qd2::train(&Cluster::new(2), &dataset(seed), &cfg, Aggregation::ReduceScatter).model
}

/// End-to-end: three clients drive open-throttle traffic while a third
/// model version is published mid-run. Every score is verified bit-exact
/// against its stamped version inside the harness; here we assert the
/// run-level invariants the PR promises.
#[test]
fn concurrent_traffic_observes_only_whole_versions() {
    let models = [trained(31, 4), trained(32, 4), trained(33, 6)];
    let cfg = TrafficConfig {
        n_clients: 3,
        requests_per_client: 60,
        batch: 8,
        qps: 0.0,
        strategy: Strategy::Blocked(0),
        seed: 99,
        ..TrafficConfig::default()
    };
    let run = run_traffic(&models, &cfg).expect("traffic run completes");
    assert_eq!(run.requests, 180, "every request completed");
    assert_eq!(run.dropped, 0, "zero dropped requests across the swaps");
    assert_eq!(run.publishes, 2, "both extra versions were published");
    assert_eq!(run.versions_seen, vec![1, 2, 3], "all three whole versions served");
    assert_eq!(run.rows, 180 * 8);
    assert!(run.throughput_rps > 0.0);
    assert!(run.p99_ms >= run.p50_ms && run.p50_ms >= 0.0);
}

/// Direct slot hammer: snapshots taken while publishes race must each be
/// a whole version. Scores are compared against per-version expectations
/// computed up front; any blend of two versions matches neither.
#[test]
fn slot_snapshots_are_never_torn() {
    let models: Vec<GbdtModel> = (0..4).map(|k| trained(50 + k, 3)).collect();
    let n_features = models[0].n_features;
    let probe: Vec<f32> = (0..n_features).map(|j| (j as f32 * 0.37).sin()).collect();
    let expected: Vec<Vec<u64>> = models
        .iter()
        .map(|m| {
            let slot = ModelSlot::new(m).unwrap();
            let ens = slot.load();
            let mut out = vec![0.0f64; ens.n_outputs];
            PerRow.predict_into(&ens, &probe, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        })
        .collect();

    let slot = ModelSlot::new(&models[0]).unwrap();
    std::thread::scope(|scope| {
        let slot = &slot;
        let expected = &expected;
        let probe = probe.as_slice();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut observed = 0usize;
                    while observed < 2000 {
                        let ens = slot.load();
                        let mut out = vec![0.0f64; ens.n_outputs];
                        PerRow.predict_into(&ens, probe, &mut out);
                        let bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                        let version = ens.version as usize;
                        assert!(
                            version >= 1 && version <= expected.len(),
                            "snapshot carries unknown version {version}"
                        );
                        assert_eq!(
                            bits,
                            expected[version - 1],
                            "scores do not match the snapshot's own version {version}: \
                             torn swap"
                        );
                        observed += 1;
                    }
                })
            })
            .collect();
        // Publish the remaining versions while the readers hammer.
        for model in &models[1..] {
            slot.publish(model).unwrap();
            std::thread::yield_now();
        }
        for r in readers {
            r.join().unwrap();
        }
    });
    assert_eq!(slot.version(), models.len() as u64);
}

/// Parallel scoring does not widen the swap window: with `score_threads
/// > 1` every request fans out across chunk workers under ONE snapshot
/// taken before the fan-out, so a publish landing mid-batch must still
/// produce a whole-version response. Batches span several 64-row chunks
/// (so the pool genuinely splits), the quantized layout is on (so the
/// swap also replaces the cut tables), and the harness bit-verifies
/// every response against its stamped version — a torn or version-mixed
/// chunk fails the bit match inside `run_traffic`.
#[test]
fn parallel_scoring_observes_only_whole_versions() {
    let models = [trained(41, 4), trained(42, 4), trained(43, 6)];
    let cfg = TrafficConfig {
        n_clients: 3,
        requests_per_client: 40,
        batch: 160,
        qps: 0.0,
        strategy: Strategy::Blocked(0),
        layout: Layout::Quant,
        score_threads: 4,
        seed: 907,
    };
    let run = run_traffic(&models, &cfg).expect("parallel traffic run completes");
    assert_eq!(run.strategy, "blocked@quant+t4", "the pool must actually be engaged");
    assert_eq!(run.requests, 120, "every request completed");
    assert_eq!(run.dropped, 0, "zero dropped requests across the swaps");
    assert_eq!(run.publishes, 2, "both extra versions were published");
    assert_eq!(run.versions_seen, vec![1, 2, 3], "all three whole versions served");
    assert_eq!(run.rows, 120 * 160);
}

/// Hot-swap during failover (PR 8): new versions are published through
/// the router while a crash plan keeps killing a replica mid-run, so at
/// least one publish lands while a replica is dead or mid-recovery. The
/// recovering replica is resynced by the router with the *current*
/// version, and every response — before, during, and after the outage —
/// must stay bit-exact for its stamped version. Versions are
/// router-assigned, so a replica that slept through a publish can never
/// stamp a reused version number on different bits.
#[test]
fn publish_during_crash_recovery_is_never_torn() {
    let models = [trained(61, 4), trained(62, 4), trained(63, 6)];
    // Crash replica 1 twice, spread across the run, with light loss on
    // exactly the route/publish paths so recovery resyncs are exercised
    // under an imperfect fabric too.
    let plan = FaultPlan::new(0xB0B0)
        .with_drop(0.03)
        .with_crash(1, 25, 0)
        .with_crash(1, 90, 0)
        .with_tag(SERVE_ROUTE_TAG)
        .with_tag(SERVE_PUBLISH_TAG);
    let cfg = AvailConfig {
        label: "swap-under-crash".into(),
        n_replicas: 3,
        n_clients: 3,
        requests_per_client: 120,
        batch: 8,
        qps: 0.0,
        strategy: Strategy::Blocked(0),
        seed: 1177,
        ..AvailConfig::default()
    };
    let outcome = run_avail(&models, &cfg, Some(plan)).unwrap();
    let run = &outcome.run;
    assert_eq!(run.incorrect, 0, "torn or mis-versioned response: {run:?}");
    assert_eq!(
        run.served + run.degraded + run.shed + run.failed,
        run.requests,
        "unaccounted requests: {run:?}"
    );
    assert!(run.availability >= 0.99, "availability {:.4}: {run:?}", run.availability);
    // Both publishes were accepted and every version was actually served.
    assert_eq!(outcome.router.publishes, 2, "{:?}", outcome.router);
    assert_eq!(run.versions_seen, vec![1, 2, 3], "{run:?}");
    // The crashes fired and the router resynced the replica each time.
    let crashes: u64 = outcome.replicas.iter().map(|r| r.crashes).sum();
    assert_eq!(crashes, 2, "{:?}", outcome.replicas);
    assert!(outcome.router.recoveries >= 2, "{:?}", outcome.router);
    // Resyncs/publishes reached the crashed replica: every replica ends
    // the run serving the final version.
    assert!(
        outcome.replicas.iter().all(|r| r.last_version == 3),
        "a replica ended stale: {:?}",
        outcome.replicas
    );
}
