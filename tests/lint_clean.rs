//! Tier-1 gate: the workspace is `gbdt-lint` clean and model-checks clean.
//!
//! These are the root-package twins of `gbdt-analysis`'s own
//! `workspace_is_lint_clean` / `workspace_is_protocol_clean` tests, so
//! that the plain `cargo test -q` tier-1 run enforces the source-level
//! determinism invariants (DESIGN.md item 10) and the exhaustively
//! simulated SPMD + serving protocol invariants (DESIGN.md item 15)
//! without needing `--workspace`. The fixture self-tests and injection
//! tests live with the analysis crate.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = gbdt_analysis::lint_workspace(root).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has {} lint error(s) — run `cargo run -p gbdt-analysis --bin gbdt-lint`:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}

#[test]
fn workspace_is_protocol_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = gbdt_analysis::model_check_workspace(root).expect("workspace walk succeeds");
    let rendered: Vec<String> = outcome.diags.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.diags.is_empty(),
        "workspace has {} model-check error(s) — run `cargo run -p gbdt-analysis --bin gbdt-lint -- --model-check`:\n{}",
        outcome.diags.len(),
        rendered.join("\n")
    );
}
