//! Cross-quadrant equivalence: the central invariant of the reproduction.
//!
//! All four quadrants (plus the Yggdrasil and feature-parallel variants)
//! implement the same GBDT mathematics over the same binned data — they must
//! grow the same ensembles, differing only in cost. These tests pin that
//! property across worker counts, objectives, and shapes.

use gbdt_cluster::Cluster;
use gbdt_core::{Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, yggdrasil, Aggregation};

fn dataset(n: usize, d: usize, classes: usize, density: f64, seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: n,
        n_features: d,
        n_classes: classes,
        density,
        label_noise: 0.02,
        seed,
        ..Default::default()
    }
    .generate()
}

fn config(classes: usize, trees: usize, layers: usize) -> TrainConfig {
    let objective =
        if classes > 2 { Objective::Softmax { n_classes: classes } } else { Objective::Logistic };
    TrainConfig::builder()
        .n_trees(trees)
        .n_layers(layers)
        .objective(objective)
        .build()
        .unwrap()
}

fn assert_same_predictions(ds: &Dataset, a: &gbdt_core::GbdtModel, b: &gbdt_core::GbdtModel, tag: &str) {
    let pa = a.predict_dataset_raw(ds);
    let pb = b.predict_dataset_raw(ds);
    for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
        assert!(
            (x - y).abs() < 1e-6,
            "{tag}: prediction {i} diverged: {x} vs {y}"
        );
    }
}

#[test]
fn all_quadrants_grow_identical_ensembles_binary() {
    let ds = dataset(1_000, 18, 2, 0.5, 1001);
    let cfg = config(2, 5, 5);
    let cluster = Cluster::new(3);
    let m1 = qd1::train(&cluster, &ds, &cfg).model;
    let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
    let m2rs = qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter).model;
    let m3 = qd3::train(&cluster, &ds, &cfg).model;
    let m4 = qd4::train(&cluster, &ds, &cfg).model;
    let mygg = yggdrasil::train(&cluster, &ds, &cfg).model;
    assert_same_predictions(&ds, &m1, &m2, "qd1-vs-qd2");
    assert_same_predictions(&ds, &m2, &m2rs, "qd2ar-vs-qd2rs");
    assert_same_predictions(&ds, &m2, &m3, "qd2-vs-qd3");
    assert_same_predictions(&ds, &m3, &m4, "qd3-vs-qd4");
    assert_same_predictions(&ds, &m4, &mygg, "qd4-vs-yggdrasil");
}

#[test]
fn all_quadrants_agree_multiclass() {
    let ds = dataset(900, 15, 4, 0.5, 1009);
    let cfg = config(4, 4, 4);
    let cluster = Cluster::new(2);
    let m1 = qd1::train(&cluster, &ds, &cfg).model;
    let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::ParameterServer).model;
    let m4 = qd4::train(&cluster, &ds, &cfg).model;
    assert_same_predictions(&ds, &m1, &m2, "qd1-vs-qd2ps");
    assert_same_predictions(&ds, &m2, &m4, "qd2ps-vs-qd4");
}

#[test]
fn agreement_holds_across_worker_counts() {
    // For each W, the trainers agree among themselves (cuts depend on the
    // sketch merge tree, so cross-W comparisons are not expected).
    let ds = dataset(700, 12, 2, 0.6, 1013);
    let cfg = config(2, 3, 5);
    for workers in [1usize, 2, 4, 5] {
        let cluster = Cluster::new(workers);
        let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
        let m4 = qd4::train(&cluster, &ds, &cfg).model;
        assert_same_predictions(&ds, &m2, &m4, &format!("W={workers}"));
    }
}

#[test]
fn feature_parallel_matches_single_node_exactly() {
    // The replica mode computes single-node cuts, so it is exact vs the
    // reference regardless of W.
    let ds = dataset(800, 14, 2, 0.5, 1019);
    let cfg = config(2, 4, 5);
    let reference = gbdt_quadrants::single::train(&ds, &cfg);
    for workers in [2usize, 3, 5] {
        let fp = featpar::train(&Cluster::new(workers), &ds, &cfg).model;
        assert_same_predictions(&ds, &reference, &fp, &format!("featpar W={workers}"));
    }
}

#[test]
fn dense_datasets_agree_too() {
    let ds = SyntheticConfig {
        n_instances: 600,
        n_features: 12,
        n_classes: 2,
        dense: true,
        seed: 1021,
        ..Default::default()
    }
    .generate();
    let cfg = config(2, 3, 4);
    let cluster = Cluster::new(2);
    let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
    let m4 = qd4::train(&cluster, &ds, &cfg).model;
    assert_same_predictions(&ds, &m2, &m4, "dense");
}

#[test]
fn deep_trees_agree() {
    let ds = dataset(1_500, 10, 2, 0.7, 1031);
    let cfg = config(2, 2, 9);
    let cluster = Cluster::new(3);
    let m2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model;
    let m4 = qd4::train(&cluster, &ds, &cfg).model;
    assert_same_predictions(&ds, &m2, &m4, "deep");
}
