//! The paper's §3 cost claims, asserted as executable invariants over the
//! instrumented trainers: how communication and memory scale with D, C, L,
//! and N for each partitioning scheme.

use gbdt_cluster::Cluster;
use gbdt_core::{Objective, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{qd2, qd4, Aggregation, DistTrainResult};

fn dataset(n: usize, d: usize, classes: usize, seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: n,
        n_features: d,
        n_classes: classes,
        density: (50.0 / d as f64).min(0.5),
        seed,
        ..Default::default()
    }
    .generate()
}

fn config(classes: usize, layers: usize) -> TrainConfig {
    let objective =
        if classes > 2 { Objective::Softmax { n_classes: classes } } else { Objective::Logistic };
    TrainConfig::builder().n_trees(2).n_layers(layers).objective(objective).build().unwrap()
}

fn train_bytes(result: &DistTrainResult) -> u64 {
    result.stats.total_bytes_sent()
}

#[test]
fn horizontal_comm_scales_with_dimensionality_vertical_does_not() {
    // §3.1.3: QD2's aggregation traffic is proportional to Sizehist ∝ D;
    // QD4's bitmap traffic is independent of D.
    let cluster = Cluster::new(2);
    let cfg = config(2, 6);
    let small = dataset(2_000, 200, 2, 31);
    let large = dataset(2_000, 800, 2, 31);
    let qd2_small = train_bytes(&qd2::train(&cluster, &small, &cfg, Aggregation::AllReduce));
    let qd2_large = train_bytes(&qd2::train(&cluster, &large, &cfg, Aggregation::AllReduce));
    let ratio = qd2_large as f64 / qd2_small as f64;
    assert!(ratio > 2.5, "QD2 traffic should ~4x with 4x D, got {ratio}");

    let qd4_small = train_bytes(&qd4::train(&cluster, &small, &cfg));
    let qd4_large = train_bytes(&qd4::train(&cluster, &large, &cfg));
    let ratio = qd4_large as f64 / qd4_small as f64;
    // Only the one-off transform grows with D; per-tree traffic does not.
    assert!(ratio < 2.0, "QD4 traffic should be nearly flat in D, got {ratio}");
}

#[test]
fn horizontal_comm_scales_with_classes_vertical_does_not() {
    // §3.1.3 / Figure 10(d): Sizehist ∝ C.
    let cluster = Cluster::new(2);
    let ds3 = dataset(2_000, 300, 3, 37);
    let ds10 = dataset(2_000, 300, 10, 37);
    let qd2_c3 = train_bytes(&qd2::train(&cluster, &ds3, &config(3, 6), Aggregation::AllReduce));
    let qd2_c10 = train_bytes(&qd2::train(&cluster, &ds10, &config(10, 6), Aggregation::AllReduce));
    let ratio = qd2_c10 as f64 / qd2_c3 as f64;
    assert!(ratio > 2.0, "QD2 traffic should ~3.3x with C 3->10, got {ratio}");

    let qd4_c3 = train_bytes(&qd4::train(&cluster, &ds3, &config(3, 6)));
    let qd4_c10 = train_bytes(&qd4::train(&cluster, &ds10, &config(10, 6)));
    let ratio = qd4_c10 as f64 / qd4_c3 as f64;
    assert!(ratio < 1.3, "QD4 traffic should not grow with C, got {ratio}");
}

#[test]
fn vertical_comm_scales_with_instances() {
    // §3.1.3: the bitmap broadcast is ⌈N/8⌉ per layer — QD4's traffic grows
    // with N while QD2's histogram traffic does not.
    let cluster = Cluster::new(2);
    let cfg = config(2, 6);
    let small = dataset(1_000, 300, 2, 41);
    let large = dataset(4_000, 300, 2, 41);
    let qd4_small = train_bytes(&qd4::train(&cluster, &small, &cfg));
    let qd4_large = train_bytes(&qd4::train(&cluster, &large, &cfg));
    assert!(
        qd4_large > qd4_small,
        "QD4 traffic should grow with N: {qd4_small} -> {qd4_large}"
    );
    let qd2_small = train_bytes(&qd2::train(&cluster, &small, &cfg, Aggregation::AllReduce));
    let qd2_large = train_bytes(&qd2::train(&cluster, &large, &cfg, Aggregation::AllReduce));
    let ratio = qd2_large as f64 / qd2_small as f64;
    assert!(ratio < 1.5, "QD2 traffic should be ~flat in N, got {ratio}");
}

#[test]
fn horizontal_comm_grows_superlinearly_with_depth() {
    // §3.1.3: per-tree aggregation traffic ∝ (2^{L-1} − 1): depth 6 -> 8
    // should roughly quadruple QD2's bytes while QD4's grow linearly (L
    // bitmap rounds). Depths are kept low enough that the 3 000-instance
    // tree does not saturate (run out of splittable nodes) before the
    // deeper layers, which would flatten the ratio.
    let cluster = Cluster::new(2);
    let ds = dataset(3_000, 200, 2, 43);
    let qd2_l6 = train_bytes(&qd2::train(&cluster, &ds, &config(2, 6), Aggregation::AllReduce));
    let qd2_l8 = train_bytes(&qd2::train(&cluster, &ds, &config(2, 8), Aggregation::AllReduce));
    let qd2_ratio = qd2_l8 as f64 / qd2_l6 as f64;
    let qd4_l6 = train_bytes(&qd4::train(&cluster, &ds, &config(2, 6)));
    let qd4_l8 = train_bytes(&qd4::train(&cluster, &ds, &config(2, 8)));
    let qd4_ratio = qd4_l8 as f64 / qd4_l6 as f64;
    assert!(
        qd2_ratio > qd4_ratio,
        "depth should hurt QD2 more: qd2 x{qd2_ratio:.2} vs qd4 x{qd4_ratio:.2}"
    );
    assert!(qd2_ratio > 2.0, "QD2 bytes should grow superlinearly in depth, got x{qd2_ratio:.2}");
    assert!(qd4_ratio < 1.6, "QD4 bytes should grow ~linearly in depth, got x{qd4_ratio:.2}");
}

#[test]
fn vertical_histogram_memory_divides_by_workers() {
    // §3.1.2: QD2 holds Sizehist × 2^{L-2} per worker; QD4 holds ~1/W of it.
    let ds = dataset(2_000, 600, 2, 47);
    let cfg = config(2, 7);
    let cluster = Cluster::new(4);
    let h2 = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce)
        .stats
        .max_histogram_bytes();
    let h4 = qd4::train(&cluster, &ds, &cfg).stats.max_histogram_bytes();
    let ratio = h2 as f64 / h4 as f64;
    // Expect ~W (4), allow slack for uneven greedy grouping.
    assert!(
        ratio > 2.5,
        "QD2 histogram memory should be ~W x QD4's, got {h2} vs {h4} (x{ratio:.2})"
    );
}

#[test]
fn bitmap_wire_size_matches_ceil_n_over_8() {
    // §3.1.3: dN/8e bytes per placement bitmap, plus the 8-byte header.
    use gbdt_partition::PlacementBitmap;
    for n in [1usize, 8, 9, 1000, 4096] {
        let bm = PlacementBitmap::new(n);
        assert_eq!(bm.encode_bytes().len(), 8 + n.div_ceil(8), "n={n}");
    }
}

#[test]
fn sizehist_formula_drives_qd2_traffic() {
    // Bytes per aggregated node ≈ 2 × Sizehist × (W-1)/W per worker for the
    // ring; verify the order of magnitude on the root histogram.
    use gbdt_core::histogram::histogram_size_bytes;
    let d = 400;
    let ds = dataset(1_500, d, 2, 53);
    let cfg = TrainConfig::builder().n_trees(1).n_layers(2).build().unwrap();
    let cluster = Cluster::new(2);
    let result = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce);
    let bytes = result.stats.total_bytes_sent();
    let sizehist = histogram_size_bytes(d, 20, 1) as u64;
    // One tree, one histogram round (root) + sketch setup + counts: traffic
    // must be within a small factor of 2 workers x 2 x Sizehist.
    assert!(
        bytes > sizehist && bytes < 20 * sizehist,
        "bytes {bytes} vs Sizehist {sizehist}"
    );
}
