//! Pinned ensemble fingerprints.
//!
//! The determinism story of this repository (quadrant equivalence, codec
//! invariance, chaos recovery) assumes trained ensembles are a pure function
//! of `(dataset, config, trainer)` — never of process-random state such as
//! `HashMap` iteration order. These fingerprints were captured *before* the
//! order-sensitive map sites were swapped to `BTreeMap` (see DESIGN.md
//! item 10); the swap must not move a single bit, and any future change that
//! alters a fingerprint is altering trained models and must be deliberate.
//!
//! The sweep test extends the same pins across every `--storage` layout and
//! `--kernel` fill (DESIGN.md item 11): sparse pair walk, dense scalar scan,
//! and dense SIMD lane groups over `u8` and `u16` cells must all reproduce
//! the exact fingerprints pinned here — the storage and kernel knobs are
//! perf-only by construction, and this test is the proof.

use gbdt_cluster::Cluster;
use gbdt_core::{Kernel, Storage, TrainConfig};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation};
use vero::{Vero, VeroConfig};

/// FNV-1a over the little-endian bytes of every raw prediction.
fn fingerprint(preds: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in preds {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn dataset() -> Dataset {
    SyntheticConfig {
        n_instances: 600,
        n_features: 12,
        n_classes: 2,
        density: 0.5,
        label_noise: 0.02,
        seed: 9157,
        ..Default::default()
    }
    .generate()
}

fn config() -> TrainConfig {
    TrainConfig::builder().n_trees(4).n_layers(4).build().unwrap()
}

fn check(name: &str, preds: &[f64], expected: u64) {
    let got = fingerprint(preds);
    assert_eq!(
        got, expected,
        "{name}: ensemble fingerprint changed: got {got:#018x}, pinned {expected:#018x}"
    );
}

#[test]
fn ensembles_are_bit_identical_to_pinned_fingerprints() {
    let ds = dataset();
    let cfg = config();
    let cluster = Cluster::new(2);

    let reference = single::train(&ds, &cfg);
    check("single", &reference.predict_dataset_raw(&ds), FP_SINGLE);

    let r = qd1::train(&cluster, &ds, &cfg);
    check("qd1", &r.model.predict_dataset_raw(&ds), FP_QD1);

    let r = qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce);
    check("qd2/all-reduce", &r.model.predict_dataset_raw(&ds), FP_QD2_AR);

    let r = qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter);
    check("qd2/reduce-scatter", &r.model.predict_dataset_raw(&ds), FP_QD2_RS);

    let r = qd3::train(&cluster, &ds, &cfg);
    check("qd3", &r.model.predict_dataset_raw(&ds), FP_QD3);

    let r = qd4::train(&cluster, &ds, &cfg);
    check("qd4", &r.model.predict_dataset_raw(&ds), FP_QD4);

    let r = yggdrasil::train(&cluster, &ds, &cfg);
    check("yggdrasil", &r.model.predict_dataset_raw(&ds), FP_YGG);

    let r = featpar::train(&cluster, &ds, &cfg);
    check("featpar", &r.model.predict_dataset_raw(&ds), FP_FEATPAR);
}

/// Every trainer × every storage layout × every fill kernel reproduces the
/// exact fingerprints pinned above. `DenseWide` forces `u16` cells even
/// though q fits `u8`, so both SIMD lane widths (16 × u8, 8 × u16) are on
/// the hook for bit-identity in every trainer.
#[test]
fn fingerprints_hold_across_storage_and_kernel() {
    let ds = dataset();
    let cluster = Cluster::new(2);
    for storage in [Storage::Sparse, Storage::Dense, Storage::DenseWide] {
        for kernel in Kernel::ALL {
            let cfg = TrainConfig::builder()
                .n_trees(4)
                .n_layers(4)
                .storage(storage)
                .kernel(kernel)
                .build()
                .unwrap();
            let tag = |t: &str| format!("{t}[{}/{}]", storage.label(), kernel.label());
            let r = single::train(&ds, &cfg);
            check(&tag("single"), &r.predict_dataset_raw(&ds), FP_SINGLE);
            let r = qd1::train(&cluster, &ds, &cfg);
            check(&tag("qd1"), &r.model.predict_dataset_raw(&ds), FP_QD1);
            let r = qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter);
            check(&tag("qd2"), &r.model.predict_dataset_raw(&ds), FP_QD2_RS);
            let r = qd3::train(&cluster, &ds, &cfg);
            check(&tag("qd3"), &r.model.predict_dataset_raw(&ds), FP_QD3);
            let r = qd4::train(&cluster, &ds, &cfg);
            check(&tag("qd4"), &r.model.predict_dataset_raw(&ds), FP_QD4);
            let r = yggdrasil::train(&cluster, &ds, &cfg);
            check(&tag("yggdrasil"), &r.model.predict_dataset_raw(&ds), FP_YGG);
            let r = featpar::train(&cluster, &ds, &cfg);
            check(&tag("featpar"), &r.model.predict_dataset_raw(&ds), FP_FEATPAR);

            let vcfg = VeroConfig::builder()
                .workers(2)
                .n_trees(4)
                .n_layers(4)
                .storage(storage)
                .kernel(kernel)
                .build()
                .unwrap();
            let outcome = Vero::fit(&vcfg, &ds);
            check(&tag("vero"), &outcome.model.inner.predict_dataset_raw(&ds), FP_VERO);
        }
    }
}

// Captured from the pre-BTreeMap-swap build (seed state of this PR); see
// module docs. Regenerate only for a change that intentionally alters
// trained ensembles, and say so in the commit. FP_VERO was captured when
// the storage × kernel sweep landed (Vero's pipeline differs from bare
// qd4: grouping + objective defaults), from the then-current scalar/sparse
// build — the SIMD kernels had to match it, not the other way around.
const FP_SINGLE: u64 = 0x6fa4_55f6_cf12_84e1;
const FP_QD1: u64 = 0xd460_8c70_9d41_1ff4;
const FP_QD2_AR: u64 = 0x8a0e_13d1_6225_cf18;
const FP_QD2_RS: u64 = 0x8a0e_13d1_6225_cf18;
const FP_QD3: u64 = 0xe2aa_7b22_b437_c55e;
const FP_QD4: u64 = 0xe2aa_7b22_b437_c55e;
const FP_YGG: u64 = 0xe2aa_7b22_b437_c55e;
const FP_FEATPAR: u64 = 0x6fa4_55f6_cf12_84e1;
const FP_VERO: u64 = 0xe2aa_7b22_b437_c55e;

/// Prints the current fingerprints (run with `--nocapture --ignored`).
#[test]
#[ignore]
fn print_fingerprints() {
    let ds = dataset();
    let cfg = config();
    let cluster = Cluster::new(2);
    let fp = |p: &[f64]| fingerprint(p);
    println!("FP_SINGLE: {:#018x}", fp(&single::train(&ds, &cfg).predict_dataset_raw(&ds)));
    println!("FP_QD1: {:#018x}", fp(&qd1::train(&cluster, &ds, &cfg).model.predict_dataset_raw(&ds)));
    println!("FP_QD2_AR: {:#018x}", fp(&qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model.predict_dataset_raw(&ds)));
    println!("FP_QD2_RS: {:#018x}", fp(&qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter).model.predict_dataset_raw(&ds)));
    println!("FP_QD3: {:#018x}", fp(&qd3::train(&cluster, &ds, &cfg).model.predict_dataset_raw(&ds)));
    println!("FP_QD4: {:#018x}", fp(&qd4::train(&cluster, &ds, &cfg).model.predict_dataset_raw(&ds)));
    println!("FP_YGG: {:#018x}", fp(&yggdrasil::train(&cluster, &ds, &cfg).model.predict_dataset_raw(&ds)));
    println!("FP_FEATPAR: {:#018x}", fp(&featpar::train(&cluster, &ds, &cfg).model.predict_dataset_raw(&ds)));
    let vcfg = VeroConfig::builder().workers(2).n_trees(4).n_layers(4).build().unwrap();
    println!("FP_VERO: {:#018x}", fp(&Vero::fit(&vcfg, &ds).model.inner.predict_dataset_raw(&ds)));
}
