//! End-to-end behaviour of the Vero system across objectives, dataset
//! shapes, and transformation options.

use vero::{GroupingStrategy, Objective, Vero, VeroConfig, WireEncoding};
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;

fn binary(n: usize, d: usize, seed: u64) -> Dataset {
    SyntheticConfig {
        n_instances: n,
        n_features: d,
        n_classes: 2,
        density: (60.0 / d as f64).min(0.5),
        label_noise: 0.03,
        seed,
        ..Default::default()
    }
    .generate()
}

#[test]
fn learns_high_dimensional_sparse() {
    let ds = binary(3_000, 800, 2001);
    let (train, valid) = ds.split_validation(0.25);
    let cfg = VeroConfig::builder().workers(4).n_trees(30).n_layers(6).build().unwrap();
    let outcome = Vero::fit(&cfg, &train);
    let auc = outcome.model.evaluate(&valid).auc.unwrap();
    // 800 features with only ~60 observed per row is a hard, diluted
    // signal; well above random ranking is the bar.
    assert!(auc > 0.62, "AUC {auc}");
}

#[test]
fn learns_regression() {
    let ds = SyntheticConfig {
        n_instances: 2_000,
        n_features: 20,
        n_classes: 0,
        density: 1.0,
        seed: 2003,
        ..Default::default()
    }
    .generate();
    let cfg = VeroConfig::builder()
        .workers(3)
        .n_trees(30)
        .n_layers(5)
        .objective(Objective::SquaredError)
        .build()
        .unwrap();
    let outcome = Vero::fit(&cfg, &ds);
    let eval = outcome.model.evaluate(&ds);
    let std = {
        let mean: f64 = ds.labels.iter().map(|&y| f64::from(y)).sum::<f64>() / 2_000.0;
        (ds.labels.iter().map(|&y| (f64::from(y) - mean).powi(2)).sum::<f64>() / 2_000.0).sqrt()
    };
    assert!(eval.rmse.unwrap() < 0.6 * std, "rmse {:?} vs std {std}", eval.rmse);
}

#[test]
fn learns_multiclass() {
    let ds = SyntheticConfig {
        n_instances: 3_000,
        n_features: 100,
        n_classes: 6,
        density: 0.3,
        label_noise: 0.0,
        seed: 2011,
        ..Default::default()
    }
    .generate();
    let (train, valid) = ds.split_validation(0.2);
    let cfg = VeroConfig::builder()
        .workers(4)
        .n_trees(15)
        .n_layers(5)
        .objective(Objective::Softmax { n_classes: 6 })
        .build()
        .unwrap();
    let outcome = Vero::fit(&cfg, &train);
    let acc = outcome.model.evaluate(&valid).accuracy.unwrap();
    // Random guessing over 6 classes = 0.167; twice that is solid learning
    // for 15 shallow trees on 30-nonzero rows.
    assert!(acc > 0.33, "accuracy {acc} (random = 0.167)");
}

#[test]
fn wire_encodings_yield_identical_models() {
    // The transformation format is a pure wire concern: the trained model
    // must be bit-identical across naive / compressed / blockified.
    let ds = binary(900, 60, 2017);
    let mut models = Vec::new();
    for encoding in [WireEncoding::Naive, WireEncoding::Compressed, WireEncoding::Blockified] {
        let cfg = VeroConfig::builder()
            .workers(3)
            .n_trees(4)
            .n_layers(4)
            .encoding(encoding)
            .build()
            .unwrap();
        models.push(Vero::fit(&cfg, &ds).model);
    }
    assert_eq!(models[0], models[1]);
    assert_eq!(models[1], models[2]);
}

#[test]
fn grouping_strategies_yield_equivalent_quality() {
    // Grouping moves features between workers; the global best split per
    // node is unchanged, so models agree.
    let ds = binary(900, 60, 2027);
    let mut models = Vec::new();
    for strategy in [
        GroupingStrategy::RoundRobin,
        GroupingStrategy::Hash,
        GroupingStrategy::Range,
        GroupingStrategy::GreedyBalanced,
    ] {
        let cfg = VeroConfig::builder()
            .workers(3)
            .n_trees(4)
            .n_layers(4)
            .grouping(strategy)
            .build()
            .unwrap();
        models.push(Vero::fit(&cfg, &ds).model);
    }
    let reference = models[0].inner.predict_dataset_raw(&ds);
    for m in &models[1..] {
        let p = m.inner.predict_dataset_raw(&ds);
        for (a, b) in reference.iter().zip(&p) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}

#[test]
fn convergence_curve_tracks_quality() {
    let ds = binary(2_000, 100, 2029);
    let (train, valid) = ds.split_validation(0.25);
    let cfg = VeroConfig::builder().workers(3).n_trees(15).n_layers(5).build().unwrap();
    let outcome = Vero::fit(&cfg, &train);
    let curve = vero::convergence_curve(&outcome, &valid);
    assert_eq!(curve.len(), 15);
    let first = curve.first().unwrap().eval.headline();
    let last = curve.last().unwrap().eval.headline();
    assert!(last > first, "metric should improve: {first} -> {last}");
    assert!(curve.windows(2).all(|w| w[1].seconds >= w[0].seconds));
}

#[test]
fn handles_more_workers_than_informative_features() {
    let ds = binary(500, 6, 2039);
    let cfg = VeroConfig::builder().workers(8).n_trees(3).n_layers(4).build().unwrap();
    let outcome = Vero::fit(&cfg, &ds);
    assert_eq!(outcome.model.n_trees(), 3);
}

#[test]
fn model_file_roundtrip_preserves_predictions() {
    let ds = binary(600, 40, 2053);
    let cfg = VeroConfig::builder().workers(2).n_trees(5).n_layers(4).build().unwrap();
    let outcome = Vero::fit(&cfg, &ds);
    let path = std::env::temp_dir().join("vero-e2e-roundtrip.json");
    outcome.model.save(&path).unwrap();
    let loaded = vero::VeroModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let csr = ds.features.to_csr();
    for i in (0..ds.n_instances()).step_by(37) {
        let (f, v) = csr.row(i);
        assert_eq!(outcome.model.predict_raw(f, v), loaded.predict_raw(f, v));
    }
}
