//! Serving equivalence: the compiled flattened ensemble is a perf-only
//! transform.
//!
//! Every trainer in the repository (the seven quadrant trainers + Vero)
//! produces a `GbdtModel`; `gbdt-serve` compiles that model into a
//! branchless node array and scores it with two interchangeable execution
//! strategies. This test pins the contract the serving layer rides on:
//! per-row traversal, blocked batched traversal, and the model's own
//! tree walk must agree **bit for bit** on every trained model — the
//! flattening, the self-looping leaf encoding, and the block schedule
//! are never allowed to move a ULP (same bar as the storage/kernel
//! sweeps in `ensemble_pinned.rs`).
//!
//! The byte codec rides the same bar: `encode_bytes` round-trips every
//! trained model exactly, and its output for the pinned dataset/config is
//! fingerprint-pinned so a format change must be deliberate.

use gbdt_cluster::Cluster;
use gbdt_core::model::GbdtModel;
use gbdt_core::TrainConfig;
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation};
use gbdt_serve::compile::compile;
use gbdt_serve::exec::{nan_dense_rows, Strategy};
use vero::{Vero, VeroConfig};

fn dataset() -> Dataset {
    SyntheticConfig {
        n_instances: 600,
        n_features: 12,
        n_classes: 2,
        density: 0.5,
        label_noise: 0.02,
        seed: 9157,
        ..Default::default()
    }
    .generate()
}

fn config() -> TrainConfig {
    TrainConfig::builder().n_trees(4).n_layers(4).build().unwrap()
}

/// Bit-compares both compiled strategies (at several request batch
/// shapes) against the model's own tree walk over the full dataset.
fn assert_serving_equivalence(name: &str, model: &GbdtModel, ds: &Dataset) {
    let reference = model.predict_dataset_raw(ds);
    let ens = compile(model, 1).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let rows = nan_dense_rows(ds, ens.n_features);
    let n_rows = ds.n_instances();
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for strategy in [Strategy::PerRow, Strategy::Blocked(0), Strategy::Blocked(1)] {
        let executor = strategy.executor();
        for batch in [1usize, 7, 64, n_rows] {
            let mut scores = vec![0.0f64; n_rows * ens.n_outputs];
            for (row_chunk, out_chunk) in rows
                .chunks(batch * ens.n_features)
                .zip(scores.chunks_mut(batch * ens.n_outputs))
            {
                executor.predict_into(&ens, row_chunk, out_chunk);
            }
            assert_eq!(
                bits(&scores),
                bits(&reference),
                "{name}: {} at batch {batch} diverged from the tree walk",
                executor.label(),
            );
        }
    }
    // The byte codec is exact on every trained model, not just synthetic
    // proptest trees.
    let decoded = GbdtModel::decode_bytes(&model.encode_bytes())
        .unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert_eq!(&decoded, model, "{name}: byte codec round trip changed the model");
}

#[test]
fn all_trainers_serve_bit_identically() {
    let ds = dataset();
    let cfg = config();
    let cluster = Cluster::new(2);

    assert_serving_equivalence("single", &single::train(&ds, &cfg), &ds);
    assert_serving_equivalence("qd1", &qd1::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence(
        "qd2/all-reduce",
        &qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model,
        &ds,
    );
    assert_serving_equivalence(
        "qd2/reduce-scatter",
        &qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter).model,
        &ds,
    );
    assert_serving_equivalence("qd3", &qd3::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("qd4", &qd4::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("yggdrasil", &yggdrasil::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("featpar", &featpar::train(&cluster, &ds, &cfg).model, &ds);

    let vcfg = VeroConfig::builder().workers(2).n_trees(4).n_layers(4).build().unwrap();
    assert_serving_equivalence("vero", &Vero::fit(&vcfg, &ds).model.inner, &ds);
}

/// Multiclass (softmax, C = 3): blocked accumulation interleaves three
/// outputs per row and still must match the walk exactly.
#[test]
fn multiclass_models_serve_bit_identically() {
    let ds = SyntheticConfig {
        n_instances: 300,
        n_features: 10,
        n_classes: 3,
        density: 0.7,
        seed: 4242,
        ..Default::default()
    }
    .generate();
    let cfg = TrainConfig::builder().n_trees(3).n_layers(3).build().unwrap();
    assert_serving_equivalence("single/3-class", &single::train(&ds, &cfg), &ds);
}

/// FNV-1a over the encoded model bytes — same hash the ensemble pins use.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serialized byte stream for the pinned dataset/config is itself
/// pinned: any change to the wire format (field order, widths, node
/// enumeration) moves this fingerprint and must be a deliberate,
/// version-bumped decision — models at rest outlive the code that wrote
/// them.
#[test]
fn encoded_model_bytes_are_pinned() {
    let model = single::train(&dataset(), &config());
    let bytes = model.encode_bytes();
    let got = fingerprint(&bytes);
    assert_eq!(
        got, FP_ENCODED_SINGLE,
        "encode_bytes stream changed: got {got:#018x}, pinned {FP_ENCODED_SINGLE:#018x}; \
         bump MODEL_FORMAT_VERSION if this is intentional"
    );
}

// Captured when the byte codec landed (PR 7).
const FP_ENCODED_SINGLE: u64 = 0x5c0c_342e_96ef_fbc4;

/// Prints the current codec fingerprint (run with `--nocapture --ignored`).
#[test]
#[ignore]
fn print_codec_fingerprint() {
    let model = single::train(&dataset(), &config());
    println!("FP_ENCODED_SINGLE: {:#018x}", fingerprint(&model.encode_bytes()));
}
