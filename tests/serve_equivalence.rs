//! Serving equivalence: the compiled flattened ensemble is a perf-only
//! transform.
//!
//! Every trainer in the repository (the seven quadrant trainers + Vero)
//! produces a `GbdtModel`; `gbdt-serve` compiles that model into a
//! branchless node array and scores it with two interchangeable execution
//! strategies. This test pins the contract the serving layer rides on:
//! per-row traversal, blocked batched traversal, and the model's own
//! tree walk must agree **bit for bit** on every trained model — across
//! both node layouts (16-byte flat and 8-byte quantized) and at every
//! scoring-thread budget (`SCORE_THREADS` env, default `1,4`) — the
//! flattening, the self-looping leaf encoding, the exact-cut quantized
//! tables, the parallel chunking, and the block schedule are never
//! allowed to move a ULP (same bar as the storage/kernel sweeps in
//! `ensemble_pinned.rs`).
//!
//! The byte codec rides the same bar: `encode_bytes` round-trips every
//! trained model exactly, and its output for the pinned dataset/config is
//! fingerprint-pinned so a format change must be deliberate.

use gbdt_cluster::Cluster;
use gbdt_core::model::GbdtModel;
use gbdt_core::TrainConfig;
use gbdt_data::synthetic::SyntheticConfig;
use gbdt_data::Dataset;
use gbdt_quadrants::{featpar, qd1, qd2, qd3, qd4, single, yggdrasil, Aggregation};
use gbdt_serve::compile::compile;
use gbdt_serve::exec::{nan_dense_rows, Layout, Strategy};
use gbdt_serve::pool;
use vero::{Vero, VeroConfig};

fn dataset() -> Dataset {
    SyntheticConfig {
        n_instances: 600,
        n_features: 12,
        n_classes: 2,
        density: 0.5,
        label_noise: 0.02,
        seed: 9157,
        ..Default::default()
    }
    .generate()
}

fn config() -> TrainConfig {
    TrainConfig::builder().n_trees(4).n_layers(4).build().unwrap()
}

/// Scoring-thread budgets to sweep: the `SCORE_THREADS` env var as a
/// comma-separated list, defaulting to `1,4` so a plain `cargo test`
/// covers both the serial path and the parallel pool. CI runs the suite
/// once per value to also get each budget in isolation.
fn score_thread_budgets() -> Vec<usize> {
    let spec = std::env::var("SCORE_THREADS").unwrap_or_else(|_| "1,4".to_string());
    let budgets: Vec<usize> = spec
        .split(',')
        .map(|t| t.trim().parse().unwrap_or_else(|e| panic!("bad SCORE_THREADS '{spec}': {e}")))
        .collect();
    assert!(!budgets.is_empty(), "SCORE_THREADS must name at least one budget");
    budgets
}

/// Bit-compares both compiled strategies — over both node layouts, at
/// every scoring-thread budget, at several request batch shapes —
/// against the model's own tree walk over the full dataset.
fn assert_serving_equivalence(name: &str, model: &GbdtModel, ds: &Dataset) {
    let reference = model.predict_dataset_raw(ds);
    let ens = compile(model, 1).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    assert!(
        ens.quant.is_some(),
        "{name}: quantized layout must exist for trained models (feature/cut counts \
         are far below the u16 caps)",
    );
    let rows = nan_dense_rows(ds, ens.n_features);
    let n_rows = ds.n_instances();
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for strategy in [Strategy::PerRow, Strategy::Blocked(0), Strategy::Blocked(1)] {
        for layout in [Layout::Flat, Layout::Quant] {
            for &threads in &score_thread_budgets() {
                let executor = pool::parallel(strategy.executor_for(layout), threads);
                for batch in [1usize, 7, 64, n_rows] {
                    let mut scores = vec![0.0f64; n_rows * ens.n_outputs];
                    for (row_chunk, out_chunk) in rows
                        .chunks(batch * ens.n_features)
                        .zip(scores.chunks_mut(batch * ens.n_outputs))
                    {
                        executor.predict_into(&ens, row_chunk, out_chunk);
                    }
                    assert_eq!(
                        bits(&scores),
                        bits(&reference),
                        "{name}: {} at batch {batch} diverged from the tree walk",
                        executor.label(),
                    );
                }
            }
        }
    }
    // The byte codec is exact on every trained model, not just synthetic
    // proptest trees.
    let decoded = GbdtModel::decode_bytes(&model.encode_bytes())
        .unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
    assert_eq!(&decoded, model, "{name}: byte codec round trip changed the model");
}

#[test]
fn all_trainers_serve_bit_identically() {
    let ds = dataset();
    let cfg = config();
    let cluster = Cluster::new(2);

    assert_serving_equivalence("single", &single::train(&ds, &cfg), &ds);
    assert_serving_equivalence("qd1", &qd1::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence(
        "qd2/all-reduce",
        &qd2::train(&cluster, &ds, &cfg, Aggregation::AllReduce).model,
        &ds,
    );
    assert_serving_equivalence(
        "qd2/reduce-scatter",
        &qd2::train(&cluster, &ds, &cfg, Aggregation::ReduceScatter).model,
        &ds,
    );
    assert_serving_equivalence("qd3", &qd3::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("qd4", &qd4::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("yggdrasil", &yggdrasil::train(&cluster, &ds, &cfg).model, &ds);
    assert_serving_equivalence("featpar", &featpar::train(&cluster, &ds, &cfg).model, &ds);

    let vcfg = VeroConfig::builder().workers(2).n_trees(4).n_layers(4).build().unwrap();
    assert_serving_equivalence("vero", &Vero::fit(&vcfg, &ds).model.inner, &ds);
}

/// Multiclass (softmax, C = 3): blocked accumulation interleaves three
/// outputs per row and still must match the walk exactly.
#[test]
fn multiclass_models_serve_bit_identically() {
    let ds = SyntheticConfig {
        n_instances: 300,
        n_features: 10,
        n_classes: 3,
        density: 0.7,
        seed: 4242,
        ..Default::default()
    }
    .generate();
    let cfg = TrainConfig::builder().n_trees(3).n_layers(3).build().unwrap();
    assert_serving_equivalence("single/3-class", &single::train(&ds, &cfg), &ds);
}

/// Fuzz the quantized layout against flat across randomized ensembles:
/// thresholds drawn from a small palette (forcing heavy cut-table
/// interning and shared slots across trees), random default directions,
/// NaN-bearing rows, ragged batch shapes. Quantization must be invisible
/// in the output bits at every strategy and thread budget.
#[test]
fn quantized_layout_is_bit_invisible_under_fuzz() {
    use gbdt_core::tree::Tree;
    use gbdt_core::Objective;

    let mut state = 0x9157_0bad_c0de_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for case in 0..25 {
        let n_features = 1 + (next() % 13) as usize;
        let n_layers = 2 + (next() % 5) as usize;
        let n_trees = 1 + (next() % 24) as usize;
        // A tiny threshold palette makes distinct trees hit identical
        // cuts, exercising the dedup path of the cut-table interner.
        let palette: Vec<f32> =
            (0..1 + (next() % 6)).map(|_| (next() % 4000) as f32 / 1000.0 - 2.0).collect();
        let mut model = GbdtModel::new(Objective::SquaredError, 0.1, n_features);
        let internal = (1usize << (n_layers - 1)) - 1;
        let total = (1usize << n_layers) - 1;
        for _ in 0..n_trees {
            let mut tree = Tree::new(n_layers, 1);
            for id in 0..internal {
                tree.set_internal(
                    id as u32,
                    (next() % n_features as u64) as u32,
                    0,
                    palette[(next() % palette.len() as u64) as usize],
                    next() & 1 == 0,
                );
            }
            for id in internal..total {
                tree.set_leaf(id as u32, vec![(next() % 1000) as f64 / 500.0 - 1.0]);
            }
            model.trees.push(tree);
        }
        let ens = compile(&model, 1).unwrap();
        assert!(ens.quant.is_some(), "case {case}: quant layout must build");
        let n_rows = 96 + (next() % 64) as usize;
        let rows: Vec<f32> = (0..n_rows * n_features)
            .map(|_| {
                if next() % 9 == 0 {
                    f32::NAN
                } else {
                    (next() % 5000) as f32 / 1000.0 - 2.5
                }
            })
            .collect();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for strategy in [Strategy::PerRow, Strategy::Blocked(0)] {
            for &threads in &score_thread_budgets() {
                let flat = pool::parallel(strategy.executor_for(Layout::Flat), threads);
                let quant = pool::parallel(strategy.executor_for(Layout::Quant), threads);
                let mut expect = vec![0.0f64; n_rows];
                let mut got = vec![0.0f64; n_rows];
                flat.predict_into(&ens, &rows, &mut expect);
                quant.predict_into(&ens, &rows, &mut got);
                assert_eq!(
                    bits(&expect),
                    bits(&got),
                    "case {case}: {} diverged from {}",
                    quant.label(),
                    flat.label(),
                );
            }
        }
    }
}

/// FNV-1a over the encoded model bytes — same hash the ensemble pins use.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serialized byte stream for the pinned dataset/config is itself
/// pinned: any change to the wire format (field order, widths, node
/// enumeration) moves this fingerprint and must be a deliberate,
/// version-bumped decision — models at rest outlive the code that wrote
/// them.
#[test]
fn encoded_model_bytes_are_pinned() {
    let model = single::train(&dataset(), &config());
    let bytes = model.encode_bytes();
    let got = fingerprint(&bytes);
    assert_eq!(
        got, FP_ENCODED_SINGLE,
        "encode_bytes stream changed: got {got:#018x}, pinned {FP_ENCODED_SINGLE:#018x}; \
         bump MODEL_FORMAT_VERSION if this is intentional"
    );
}

// Captured when the byte codec landed (PR 7).
const FP_ENCODED_SINGLE: u64 = 0x5c0c_342e_96ef_fbc4;

/// Prints the current codec fingerprint (run with `--nocapture --ignored`).
#[test]
#[ignore]
fn print_codec_fingerprint() {
    let model = single::train(&dataset(), &config());
    println!("FP_ENCODED_SINGLE: {:#018x}", fingerprint(&model.encode_bytes()));
}
